"""Declarative fault schedules.

A :class:`FaultSpec` is one fault — pure data: *what* goes wrong, *when*
(beacon-period indices), *where* (a node id, :data:`REFERENCE_MARKER` for
"whoever is the reference at fire time", or nothing for channel-wide
faults) and *how hard* (a magnitude whose unit depends on the kind). A
:class:`FaultPlan` is an ordered collection of specs plus provenance
(name, seed), serializable to/from plain dicts so plans can be logged,
stored and replayed bit-exactly.

Fault kinds
-----------

========== ======= ===========================================================
kind       target  semantics
========== ======= ===========================================================
freq_step  node    oscillator rate steps by ``magnitude`` ppm (continuous in
                   value at the fire instant; permanent)
freq_ramp  node    rate drifts by ``magnitude`` ppm total, applied in equal
                   per-period increments over ``duration_periods``
clock_jump node    hardware timestamp jumps by ``magnitude`` us (a
                   discontinuity by design — reboots, counter glitches)
crash      node    hard crash at ``start_period`` (no graceful leave); the
                   node reboots ``duration_periods`` later and re-joins
                   through the coarse phase (0 = never restarts)
stall      node    the node freezes for the window: no tx, no rx, no
                   protocol processing; its clock keeps running
jam        channel every transmission inside the window is suppressed
loss_burst channel per-transmission loss probability is forced to
                   ``magnitude`` for the window (burst-loss regime)
partition  channel the network splits into two groups for the window;
                   ``magnitude`` is the fraction of nodes in the first
                   group (carrier sensing and delivery are both split)
========== ======= ===========================================================

The schedule is *pure data*: applying it to a live network is the
:class:`repro.faults.injector.FaultInjector`'s job.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.network.churn import REFERENCE_MARKER

#: Kinds targeting one node (``node_id`` required).
NODE_FAULT_KINDS = frozenset(
    {"freq_step", "freq_ramp", "clock_jump", "crash", "stall"}
)
#: Kinds targeting the shared channel (``node_id`` must be None).
CHANNEL_FAULT_KINDS = frozenset({"jam", "loss_burst", "partition"})
#: All known kinds.
FAULT_KINDS = NODE_FAULT_KINDS | CHANNEL_FAULT_KINDS
#: Kinds that require a window (``duration_periods >= 1``).
WINDOWED_KINDS = frozenset(
    {"freq_ramp", "stall", "jam", "loss_burst", "partition"}
)


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault (see the module table for kind semantics).

    Attributes
    ----------
    kind:
        One of :data:`FAULT_KINDS`.
    start_period:
        Beacon period (>= 1) at whose start the fault fires.
    duration_periods:
        Window length for windowed kinds; restart delay for ``crash``
        (0 = the node never restarts); ignored for ``freq_step`` and
        ``clock_jump``.
    node_id:
        Target station for node faults; :data:`REFERENCE_MARKER` means
        "whoever is the reference when the fault fires" (``crash``,
        ``stall`` and the clock kinds accept it). Must be None for
        channel faults.
    magnitude:
        Kind-dependent intensity (ppm, us, probability or fraction).
    """

    kind: str
    start_period: int
    duration_periods: int = 0
    node_id: Optional[int] = None
    magnitude: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}: expected one of "
                f"{sorted(FAULT_KINDS)}"
            )
        if self.start_period < 1:
            raise ValueError("start_period must be >= 1")
        if self.duration_periods < 0:
            raise ValueError("duration_periods must be >= 0")
        if self.kind in WINDOWED_KINDS and self.duration_periods < 1:
            raise ValueError(f"{self.kind} needs duration_periods >= 1")
        if self.kind in NODE_FAULT_KINDS and self.node_id is None:
            raise ValueError(f"{self.kind} needs a node_id")
        if self.kind in CHANNEL_FAULT_KINDS and self.node_id is not None:
            raise ValueError(f"{self.kind} is channel-wide: node_id must be None")
        if not math.isfinite(self.magnitude):
            raise ValueError("magnitude must be finite")
        if self.kind == "loss_burst" and not 0.0 <= self.magnitude <= 1.0:
            raise ValueError("loss_burst magnitude is a probability in [0, 1]")
        if self.kind == "partition" and not 0.0 < self.magnitude < 1.0:
            raise ValueError("partition magnitude is a fraction in (0, 1)")

    @property
    def end_period(self) -> int:
        """First period *not* affected by this fault (start for instant
        kinds; ``start + duration`` for windows and restarting crashes)."""
        if self.kind in ("freq_step", "clock_jump"):
            return self.start_period
        return self.start_period + self.duration_periods

    def covers(self, period: int) -> bool:
        """Whether a windowed fault is active during ``period``."""
        return self.start_period <= period < self.start_period + self.duration_periods

    def to_dict(self) -> Dict:
        """Plain-dict form (JSON-safe)."""
        return {
            "kind": self.kind,
            "start_period": self.start_period,
            "duration_periods": self.duration_periods,
            "node_id": self.node_id,
            "magnitude": self.magnitude,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "FaultSpec":
        """Inverse of :meth:`to_dict` (validates on construction)."""
        return cls(
            kind=data["kind"],
            start_period=int(data["start_period"]),
            duration_periods=int(data.get("duration_periods", 0)),
            node_id=(
                None if data.get("node_id") is None else int(data["node_id"])
            ),
            magnitude=float(data.get("magnitude", 0.0)),
        )


@dataclass(frozen=True)
class FaultPlan:
    """An ordered, serializable collection of faults.

    Attributes
    ----------
    faults:
        The specs, kept in ``(start_period, kind)`` order.
    name:
        Free-form label (shown in logs and chaos reports).
    seed:
        Generator seed the plan was derived from, if any (provenance
        only; replaying a plan never re-draws randomness).
    """

    faults: Tuple[FaultSpec, ...] = ()
    name: str = ""
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        ordered = tuple(
            sorted(self.faults, key=lambda f: (f.start_period, f.kind))
        )
        object.__setattr__(self, "faults", ordered)

    def __len__(self) -> int:
        return len(self.faults)

    def __iter__(self) -> Iterator[FaultSpec]:
        return iter(self.faults)

    def last_affected_period(self) -> int:
        """Largest period any fault still affects (0 for an empty plan)."""
        return max((f.end_period for f in self.faults), default=0)

    def kinds(self) -> List[str]:
        """Kind of every fault, in schedule order."""
        return [f.kind for f in self.faults]

    def to_dict(self) -> Dict:
        """Plain-dict form (JSON-safe)."""
        return {
            "name": self.name,
            "seed": self.seed,
            "faults": [f.to_dict() for f in self.faults],
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "FaultPlan":
        """Inverse of :meth:`to_dict`."""
        return cls(
            faults=tuple(FaultSpec.from_dict(f) for f in data.get("faults", ())),
            name=data.get("name", ""),
            seed=data.get("seed"),
        )


def random_plan(
    rng: np.random.Generator,
    periods: int,
    node_ids: Sequence[int],
    first_period: int = 40,
    last_period: Optional[int] = None,
    fault_count: Tuple[int, int] = (3, 8),
    include_reference_crash: bool = True,
    name: str = "",
    seed: Optional[int] = None,
) -> FaultPlan:
    """Draw a randomized adversarial schedule with bounded magnitudes.

    Every fault fires at or after ``first_period`` (the network must have
    elected and converged first) and stops affecting the run before
    ``last_period`` (default ``periods``), leaving a fault-free recovery
    tail the chaos invariants are checked against. Magnitudes are bounded
    so a hardened protocol *can* recover: frequency faults stay within a
    few hundred ppm, most timestamp jumps stay under the fine guard (the
    occasional larger one exercises the coarse-restart recovery), and
    stall/partition windows are short enough that free-running clocks
    stay inside the guard when the window heals.

    With ``include_reference_crash`` (default) the plan always contains
    one crash of the current reference — the re-election invariant needs
    at least one per plan.
    """
    last = periods if last_period is None else last_period
    if not 1 <= first_period < last:
        raise ValueError("need 1 <= first_period < last_period")
    ids = [int(i) for i in node_ids]
    if not ids:
        raise ValueError("need at least one node id")

    def window(max_dur: int, min_dur: int = 1) -> Tuple[int, int]:
        dur = int(rng.integers(min_dur, max_dur + 1))
        dur = min(dur, last - 1 - first_period)
        start = int(rng.integers(first_period, last - dur))
        return start, dur

    faults: List[FaultSpec] = []
    if include_reference_crash:
        start, dur = window(40, 15)
        faults.append(
            FaultSpec("crash", start, dur, node_id=REFERENCE_MARKER)
        )

    kinds = [
        "freq_step", "freq_ramp", "clock_jump", "crash",
        "stall", "jam", "loss_burst", "partition",
    ]
    count = int(rng.integers(fault_count[0], fault_count[1] + 1))
    for _ in range(count):
        kind = kinds[int(rng.integers(0, len(kinds)))]
        node = ids[int(rng.integers(0, len(ids)))]
        if kind == "freq_step":
            ppm = float(rng.uniform(20.0, 150.0)) * (1 if rng.random() < 0.5 else -1)
            start = int(rng.integers(first_period, last))
            faults.append(FaultSpec(kind, start, node_id=node, magnitude=ppm))
        elif kind == "freq_ramp":
            ppm = float(rng.uniform(50.0, 250.0)) * (1 if rng.random() < 0.5 else -1)
            start, dur = window(40, 10)
            faults.append(FaultSpec(kind, start, dur, node_id=node, magnitude=ppm))
        elif kind == "clock_jump":
            if rng.random() < 0.8:
                jump = float(rng.uniform(50.0, 350.0))
            else:
                # beyond the fine guard: forces the recovery watchdog
                jump = float(rng.uniform(600.0, 1500.0))
            jump *= 1 if rng.random() < 0.5 else -1
            start = int(rng.integers(first_period, last))
            faults.append(FaultSpec(kind, start, node_id=node, magnitude=jump))
        elif kind == "crash":
            start, dur = window(50, 10)
            faults.append(FaultSpec(kind, start, dur, node_id=node))
        elif kind == "stall":
            start, dur = window(15, 5)
            faults.append(FaultSpec(kind, start, dur, node_id=node))
        elif kind == "jam":
            start, dur = window(12, 3)
            faults.append(FaultSpec(kind, start, dur))
        elif kind == "loss_burst":
            start, dur = window(30, 8)
            per = float(rng.uniform(0.3, 0.9))
            faults.append(FaultSpec(kind, start, dur, magnitude=per))
        else:  # partition
            start, dur = window(15, 8)
            frac = float(rng.uniform(0.3, 0.5))
            faults.append(FaultSpec(kind, start, dur, magnitude=frac))
    return FaultPlan(faults=tuple(faults), name=name, seed=seed)
