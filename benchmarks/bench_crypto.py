"""Crypto cost benches: the full uTESLA pipeline versus the modeled one.

The paper argues hash-based protection is cheap enough to run per beacon
("hash functions are three to four orders of magnitude faster than
asymmetric operations ... performed in an on-the-fly way"). These benches
measure the actual per-beacon sender and receiver cost of the full
backend and the speedup of the modeled backend that the large-N sweeps
rely on.
"""

from __future__ import annotations

import numpy as np

from conftest import paper_rows

from repro.core.backend import FullCryptoBackend, ModeledCryptoBackend
from repro.crypto.hashchain import DenseHashChain
from repro.crypto.mutesla import IntervalSchedule

BP = 100_000.0
N_INTERVALS = 512


def _full_backend():
    schedule = IntervalSchedule(0.0, BP, N_INTERVALS)
    backend = FullCryptoBackend(schedule, np.random.default_rng(0))
    backend.register_node(1)
    backend.make_frame(1, 1, BP)  # materialise the chain outside the timing
    return backend


def test_full_pipeline_per_beacon(benchmark):
    backend = _full_backend()
    state = {"j": 1}

    def one_beacon():
        j = state["j"]
        frame = backend.make_frame(1, j, j * BP)
        verdict = backend.process(9, frame, j * BP)
        state["j"] = 1 + (j % (N_INTERVALS - 1))
        return verdict

    verdict = benchmark(one_beacon)
    assert verdict.accepted
    mean_us = benchmark.stats["mean"] * 1e6
    # "on-the-fly": far below the 100 ms BP (and even below one slot time
    # on this host)
    assert mean_us < 1_000.0
    paper_rows(
        benchmark,
        "crypto: full uTESLA per-beacon cost",
        [f"secure+verify one beacon: {mean_us:.1f}us on this host "
         f"({mean_us / 100_000 * 100:.4f}% of one BP)"],
    )


def test_modeled_pipeline_per_beacon(benchmark):
    schedule = IntervalSchedule(0.0, BP, N_INTERVALS)
    backend = ModeledCryptoBackend(schedule)
    backend.register_node(1)
    state = {"j": 1}

    def one_beacon():
        j = state["j"]
        frame = backend.make_frame(1, j, j * BP)
        verdict = backend.process(9, frame, j * BP)
        state["j"] = 1 + (j % (N_INTERVALS - 1))
        return verdict

    verdict = benchmark(one_beacon)
    assert verdict.accepted


def test_chain_generation(benchmark):
    chain = benchmark(lambda: DenseHashChain(b"\x07" * 16, 10_000))
    assert chain.length == 10_000
    mean_ms = benchmark.stats["mean"] * 1e3
    paper_rows(
        benchmark,
        "crypto: 10k-element chain generation",
        [f"one 1000s-horizon chain: {mean_ms:.1f}ms (one-time setup cost)"],
    )
