"""Property-based tests on hash chains, uTESLA and contention (hypothesis)."""

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.crypto.fractal import FractalTraversal
from repro.crypto.hashchain import DenseHashChain, verify_element
from repro.crypto.primitives import hash128_iter
from repro.mac.contention import resolve_contention

seeds = st.binary(min_size=1, max_size=32)
lengths = st.integers(min_value=1, max_value=256)


class TestChainProperties:
    @given(seed=seeds, length=lengths)
    @settings(max_examples=30)
    def test_every_element_verifies_against_anchor(self, seed, length):
        chain = DenseHashChain(seed, length)
        for j in range(0, length + 1, max(1, length // 7)):
            ok, _ = verify_element(chain.element(j), j, chain.anchor, length)
            assert ok

    @given(seed=seeds, length=lengths, data=st.data())
    @settings(max_examples=30)
    def test_shifted_claims_never_verify(self, seed, length, data):
        assume(length >= 2)
        chain = DenseHashChain(seed, length)
        j = data.draw(st.integers(min_value=0, max_value=length - 1))
        wrong = data.draw(
            st.integers(min_value=0, max_value=length).filter(lambda x: x != j)
        )
        ok, _ = verify_element(chain.element(j), wrong, chain.anchor, length)
        assert not ok

    @given(seed=seeds, length=lengths)
    @settings(max_examples=30)
    def test_fractal_equals_dense(self, seed, length):
        dense = DenseHashChain(seed, length)
        traversal = FractalTraversal(seed, length)
        assert traversal.anchor == dense.anchor
        for expected in range(length - 1, -1, -1):
            pos, value = traversal.next()
            assert pos == expected
            assert value == dense.element(pos)

    @given(seed=seeds, a=st.integers(0, 64), b=st.integers(0, 64))
    @settings(max_examples=50)
    def test_iterated_hash_composes(self, seed, a, b):
        assert hash128_iter(hash128_iter(seed, a), b) == hash128_iter(seed, a + b)


class TestContentionProperties:
    times = st.lists(
        st.floats(min_value=0.0, max_value=500.0),
        min_size=1,
        max_size=25,
        unique=True,
    )

    @given(times=times)
    @settings(max_examples=100)
    def test_at_most_one_success(self, times):
        candidates = [(i, t) for i, t in enumerate(times)]
        result = resolve_contention(candidates, airtime_us=36.0, cca_us=9.0)
        successes = [tx for tx in result.transmissions if tx.success]
        assert len(successes) <= 1

    @given(times=times)
    @settings(max_examples=100)
    def test_every_candidate_accounted_once(self, times):
        candidates = [(i, t) for i, t in enumerate(times)]
        result = resolve_contention(candidates, airtime_us=36.0, cca_us=9.0)
        transmitted = [m for tx in result.transmissions for m in tx.members]
        accounted = sorted(transmitted + result.cancelled)
        assert accounted == sorted(i for i, _ in candidates)

    @given(times=times)
    @settings(max_examples=100)
    def test_nobody_cancelled_before_first_success(self, times):
        candidates = [(i, t) for i, t in enumerate(times)]
        result = resolve_contention(candidates, airtime_us=36.0, cca_us=9.0)
        success = result.first_success
        by_id = dict(candidates)
        if success is None:
            assert result.cancelled == []
        else:
            for station in result.cancelled:
                assert by_id[station] >= success.start_us

    @given(times=times, airtime=st.floats(min_value=1.0, max_value=100.0))
    @settings(max_examples=100)
    def test_transmissions_never_overlap(self, times, airtime):
        candidates = [(i, t) for i, t in enumerate(times)]
        result = resolve_contention(candidates, airtime_us=airtime, cca_us=9.0)
        spans = sorted(
            (tx.start_us, tx.end_us) for tx in result.transmissions
        )
        for (_s1, e1), (s2, _) in zip(spans, spans[1:]):
            assert s2 >= e1 - 1e-9

    @given(
        lone=st.floats(min_value=0.0, max_value=1000.0),
    )
    def test_single_candidate_always_wins(self, lone):
        result = resolve_contention([(7, lone)], 36.0, 9.0)
        assert result.winner == 7
