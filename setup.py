"""Legacy setup shim.

All project metadata lives in ``pyproject.toml``; this file exists so that
``pip install -e .`` works in offline environments where the ``wheel``
package (required by the PEP 517 editable path) is unavailable.
"""

from setuptools import setup

setup()
