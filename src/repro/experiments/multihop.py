"""Multi-hop scenario suite through the sweep orchestrator.

The paper's stated future work (multi-hop SSTSP, :mod:`repro.multihop`)
evaluated over the canonical topology shapes — worst-case chain, lattice
grid, random unit-disk deployment, and the degenerate complete graph
(which the runner delegates to the single-hop reference lane). Each
scenario is one content-addressed :class:`~repro.sweep.spec.JobSpec`, so
the suite inherits the orchestrator's contract: ``--workers N`` fans
scenarios across processes, ``--cache-dir`` makes reruns cache hits, and
the ``results/multihop.csv`` bytes are identical at any worker count.
"""

from __future__ import annotations

import argparse
import os
from typing import Any, Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.experiments.report import ensure_results_dir, format_table
from repro.sweep import (
    JobSpec,
    SweepOptions,
    add_sweep_arguments,
    run_sweep,
    sweep_options_from_args,
)

#: The default scenario grid: one row per topology shape the multi-hop
#: tests and benchmarks exercise. ``duration_s`` values keep a cold serial
#: run in the minutes range; ``--quick`` trims them further.
DEFAULT_SCENARIOS: Sequence[Dict[str, Any]] = (
    {"name": "chain8", "topology": "chain", "n": 8, "duration_s": 25.0, "seed": 3},
    {
        "name": "grid5x5",
        "topology": "grid",
        "rows": 5,
        "cols": 5,
        "duration_s": 30.0,
        "seed": 3,
    },
    {
        "name": "mesh12",
        "topology": "full_mesh",
        "n": 12,
        "duration_s": 20.0,
        "seed": 3,
    },
    {
        "name": "disk30",
        "topology": "unit_disk",
        "n": 30,
        "area_m": 900.0,
        "radius_m": 320.0,
        "duration_s": 30.0,
        "seed": 5,
    },
)

#: Spec fields forwarded verbatim from job params to MultiHopSpec.
_SPEC_PASSTHROUGH = (
    "seed",
    "protocol",
    "duration_s",
    "beacon_period_us",
    "drift_ppm",
    "initial_offset_us",
    "root",
    "hop_stride_slots",
    "relay_probability",
    "m",
    "l",
    "resync_after_periods",
    "loss_model",
)


def _build_topology(params: Mapping[str, Any], job: JobSpec):
    """Topology from flat job params (unit-disk draws from the job seed)."""
    from repro.multihop.topology import Topology

    kind = params["topology"]
    if kind == "chain":
        return Topology.chain(int(params["n"]))
    if kind == "full_mesh":
        return Topology.full_mesh(int(params["n"]))
    if kind == "grid":
        return Topology.grid(int(params["rows"]), int(params["cols"]))
    if kind == "unit_disk":
        rng = np.random.default_rng(job.derived_seed())
        return Topology.unit_disk(
            int(params["n"]),
            rng,
            area_m=float(params.get("area_m", 1_000.0)),
            radius_m=float(params.get("radius_m", 250.0)),
        )
    raise ValueError(f"unknown topology kind {kind!r}")


def job_multihop_run(job: JobSpec) -> Dict[str, Any]:
    """Execute one multi-hop scenario; returns a flat, picklable payload."""
    from repro.multihop.runner import MultiHopSpec, run_multihop

    params = job.params_dict()
    topology = _build_topology(params, job)
    overrides = {
        key: params[key] for key in _SPEC_PASSTHROUGH if key in params
    }
    spec = MultiHopSpec(topology=topology, **overrides)
    result = run_multihop(spec)
    trace = result.trace
    return {
        "name": params.get("name", job.kind),
        "nodes": topology.n,
        "root": result.root,
        "root_changes": result.root_changes,
        "beacons_sent": result.beacons_sent,
        "collisions": result.collisions_at_receivers,
        "max_hop": result.max_hop(),
        "per_hop_error_us": dict(result.per_hop_error_us),
        "steady_state_error_us": trace.steady_state_error_us(),
        "peak_error_us": trace.peak_error_us(),
        "final_present": int(trace.present_counts[-1]) if len(trace) else 0,
        "final_max_diff_us": float(trace.max_diff_us[-1]) if len(trace) else None,
    }


def scenario_specs(
    scenarios: Sequence[Mapping[str, Any]] = DEFAULT_SCENARIOS,
    seed: int = 1,
    quick: bool = False,
) -> List[JobSpec]:
    """Freeze the scenario grid into sweep job specs."""
    specs = []
    for scenario in scenarios:
        params = dict(scenario)
        if quick:
            params["duration_s"] = min(float(params.get("duration_s", 30.0)), 8.0)
        specs.append(JobSpec.make("multihop_run", params, root_seed=seed))
    return specs


def run(
    scenarios: Sequence[Mapping[str, Any]] = DEFAULT_SCENARIOS,
    seed: int = 1,
    quick: bool = False,
    sweep: Optional[SweepOptions] = None,
) -> List[Dict[str, Any]]:
    """Run the scenario suite; returns payloads in scenario order."""
    specs = scenario_specs(scenarios, seed=seed, quick=quick)
    return run_sweep("multihop", specs, sweep).values


def save_rows_csv(rows: Sequence[Dict[str, Any]], name: str = "multihop") -> str:
    """Write the scenario payloads as CSV; ``repr`` floats keep the bytes
    a pure function of the values (the parallel-determinism contract)."""
    path = os.path.join(ensure_results_dir(), f"{name}.csv")
    lines = [
        "name,nodes,root,root_changes,beacons_sent,collisions,max_hop,"
        "final_present,steady_state_error_us,peak_error_us,hop1_error_us,"
        "deepest_hop_error_us"
    ]
    for row in rows:
        per_hop = row["per_hop_error_us"]
        hop1 = per_hop.get(1)
        deepest = per_hop[max(per_hop)] if per_hop else None
        lines.append(
            ",".join(
                [
                    str(row["name"]),
                    str(row["nodes"]),
                    str(row["root"]),
                    str(row["root_changes"]),
                    str(row["beacons_sent"]),
                    str(row["collisions"]),
                    str(row["max_hop"]),
                    str(row["final_present"]),
                    repr(row["steady_state_error_us"]),
                    repr(row["peak_error_us"]),
                    "" if hop1 is None else repr(hop1),
                    "" if deepest is None else repr(deepest),
                ]
            )
        )
    with open(path, "w", encoding="utf-8") as fh:
        fh.write("\n".join(lines) + "\n")
    return path


def main(argv=None) -> None:
    """CLI entry point: ``python -m repro multihop``."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="trim scenario durations to ~8 simulated seconds",
    )
    parser.add_argument("--seed", type=int, default=1, help="sweep root seed")
    add_sweep_arguments(parser)
    args = parser.parse_args(argv)

    rows = run(seed=args.seed, quick=args.quick, sweep=sweep_options_from_args(args))
    csv_path = save_rows_csv(rows)
    print("=== Multi-hop SSTSP scenario suite ===")
    print()
    table_rows = []
    for row in rows:
        per_hop = row["per_hop_error_us"]
        hop1 = per_hop.get(1)
        deepest = per_hop[max(per_hop)] if per_hop else None
        table_rows.append(
            (
                row["name"],
                row["nodes"],
                row["max_hop"],
                f"{hop1:.2f} us" if hop1 is not None else "-",
                f"{deepest:.2f} us" if deepest is not None else "-",
                row["beacons_sent"],
                row["collisions"],
                row["root_changes"],
            )
        )
    print(
        format_table(
            ["scenario", "n", "max hop", "hop-1 err", "deepest err",
             "beacons", "collisions", "root changes"],
            table_rows,
        )
    )
    print()
    print(f"rows written to {csv_path}")
    print(
        "shape checks: hop-1 error stays in the single-hop range; error "
        "grows with hop depth; the complete graph matches the single-hop lane"
    )


if __name__ == "__main__":
    main()
