"""Differential parity: event-driven Simulator lane vs vectorised lane.

The OO lane (:mod:`repro.network`, driven by the discrete-event
``Simulator``) is the readable reference; ``repro.fastlane.sstsp_vec`` is
the production engine every experiment sweeps with. The two lanes consume
their RNG streams differently, so traces are not bit-equal — but on the
same scenario they must tell the same story: the stabilised (tail) sync
error agrees within a tight tolerance and the number of observed
reference changes matches exactly. Three shared scenarios pin this down:
a plain IBSS, one bootstrapping from Table 1's ±112 us initial offsets,
and one with the paper churn pattern whose reference departs at 300 s
(both lanes must re-elect exactly once).
"""

from __future__ import annotations

import pytest

from repro.fastlane import run_sstsp_vectorized
from repro.network.ibss import ScenarioSpec, build_network

#: The shared scenarios: (id, spec, relative tail tolerance).
SCENARIOS = [
    (
        "plain-n30",
        ScenarioSpec(n=30, seed=3, duration_s=30.0),
        0.10,
    ),
    (
        "offsets-n40",
        ScenarioSpec(n=40, seed=2, duration_s=30.0, initial_offset_us=112.0),
        0.10,
    ),
    (
        "churn-ref-departure-n16",
        ScenarioSpec(n=16, seed=5, duration_s=320.0, churn="paper"),
        0.15,
    ),
]


def _run_both(spec: ScenarioSpec):
    oo = build_network("sstsp", spec).run()
    vec = run_sstsp_vectorized(spec)
    return oo, vec


@pytest.mark.parametrize(
    "spec,rel_tol",
    [s[1:] for s in SCENARIOS],
    ids=[s[0] for s in SCENARIOS],
)
class TestDifferentialParity:
    def test_tail_error_agrees(self, spec, rel_tol):
        oo, vec = _run_both(spec)
        oo_tail = oo.trace.steady_state_error_us()
        vec_tail = vec.trace.steady_state_error_us()
        assert vec_tail == pytest.approx(oo_tail, rel=rel_tol)
        # both lanes land inside the paper's accuracy claim
        assert oo_tail < 10.0 and vec_tail < 10.0

    def test_reference_change_count_matches(self, spec, rel_tol):
        oo, vec = _run_both(spec)
        assert (
            oo.trace.reference_changes() == vec.trace.reference_changes()
        ), "lanes disagree on how many reference hand-offs happened"


def test_churn_scenario_actually_reelects():
    """Guard the third scenario's purpose: its reference really departs,
    so a parity pass there covers the re-election path, not just steady
    state."""
    spec = SCENARIOS[2][1]
    vec = run_sstsp_vectorized(spec)
    assert vec.trace.reference_changes() >= 1
    assert any("left" in event for event in vec.events)
