"""Multi-hop SSTSP - the paper's stated future work, built out.

The paper's conclusion: "Our further work includes extending SSTSP to
multi-hop ad hoc networks." This package is that extension, designed to
stay within the paper's own mechanics:

* the network is a general radio topology (:mod:`repro.multihop.topology`,
  unit-disk / grid / chain builders over ``networkx``);
* one *root* reference is elected exactly as in single-hop SSTSP;
* synchronized nodes *relay*: each BP, a node at hop distance ``h`` from
  the root may rebroadcast a secure beacon carrying its own adjusted
  time and its hop count, transmitting inside the ``h``-th segment of the
  beacon window so the wave propagates outward in one BP (the idea ASP
  [9] uses for spreading the fast time, recast around SSTSP's reference);
* receivers prefer the lowest-hop upstream they can hear and run the
  unchanged SSTSP pipeline (uTESLA per relayer, guard time, the (k, b)
  slewing) against it - so synchronization error accumulates per hop by
  roughly the per-link estimate error, which the experiment measures.

Trust model (documented limit, inherited from delegating through
relayers): uTESLA authenticates *who relayed*, not that the relayed value
is honest; a compromised relayer can therefore shift its whole subtree -
but only within the guard time per beacon, exactly the paper's insider
bound, now per subtree.

The runner itself is protocol-agnostic: the SSTSP relay scheme above is
one :class:`~repro.protocols.multihop_base.MultiHopProtocol`
implementation (``MultiHopSpec(protocol="sstsp")``, the default), and
the related-work competitors (``"beaconless"``, ``"coop"``) run on the
same harness — compared head-to-head by ``repro shootout``.
"""

from repro.multihop.topology import Topology
from repro.multihop.runner import MultiHopResult, MultiHopRunner, MultiHopSpec

__all__ = [
    "Topology",
    "MultiHopSpec",
    "MultiHopRunner",
    "MultiHopResult",
]
