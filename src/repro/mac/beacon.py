"""Beacon frame types.

``BeaconFrame`` is the plain TSF beacon: a timestamp taken *below the MAC
layer* at transmission start (paper section 3.2 assumes this, removing
medium-access waiting time from the end-to-end delay) plus identification.
``SecureBeaconFrame`` is SSTSP's ``<B, j, HMAC_{K_j}(B, j), K_{j-1}>``:
the original beacon, the uTESLA interval index, the MAC tag computed under
the (not yet disclosed) key of interval ``j``, and the disclosed key of the
previous interval.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.phy.params import SSTSP_BEACON_BYTES, TSF_BEACON_BYTES


@dataclass(frozen=True)
class BeaconFrame:
    """A TSF synchronization beacon.

    Attributes
    ----------
    sender:
        Station id of the transmitter.
    timestamp_us:
        The transmitter's clock value at transmission start (TSF timer for
        TSF; adjusted clock for SSTSP), in microseconds.
    size_bytes:
        On-air size, for overhead accounting.
    """

    sender: int
    timestamp_us: float
    size_bytes: int = TSF_BEACON_BYTES

    def payload_for_mac(self) -> bytes:
        """Canonical byte encoding of the fields a MAC tag must cover."""
        return f"B|{self.sender}|{self.timestamp_us:.6f}".encode()


@dataclass(frozen=True)
class SecureBeaconFrame:
    """An SSTSP beacon: ``<B, j, HMAC(B, j), disclosed key of interval j-1>``."""

    sender: int
    timestamp_us: float
    interval: int
    mac_tag: bytes
    disclosed_key: bytes
    size_bytes: int = SSTSP_BEACON_BYTES

    def inner(self) -> BeaconFrame:
        """The unsecured beacon ``B`` carried inside."""
        return BeaconFrame(
            sender=self.sender,
            timestamp_us=self.timestamp_us,
            size_bytes=self.size_bytes,
        )

    def payload_for_mac(self) -> bytes:
        """Byte encoding of ``(B, j)`` - the data the HMAC tag covers."""
        return self.inner().payload_for_mac() + f"|{self.interval}".encode()
