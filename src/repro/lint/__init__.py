"""reprolint: determinism & unit-safety static analysis for the kernel.

Every guarantee this reproduction makes — the Lemma-1/Lemma-2 error
bounds, byte-identical sweep CSVs at any worker count, bit-parity
between the OO, vectorized and multi-hop lanes — rests on the simulation
kernel being deterministic and unit-consistent. Ordinary tests only
catch a determinism regression when it happens to flip an asserted
value; unseeded randomness, a wall-clock read, or an unordered ``set``
iteration in a result-affecting path usually corrupts results *silently*.

This package is an AST-based static analysis suite targeting exactly
those failure modes. It is pure stdlib (no third-party dependencies) so
it can run anywhere the interpreter runs, including minimal CI jobs:

``python -m repro.lint [paths]``
    Lint files or directories (default: ``src/repro``); exit 1 on
    findings, 0 when clean.

Analysis happens at two scopes. The **D-series**
(:data:`repro.lint.rules.RULES`) is per-file: unseeded randomness,
wall-clock reads, unordered iteration, float time equality, mutable
defaults, stray hashlib. The **T/E/R families**
(:data:`repro.lint.flowrules.FLOW_RULES`) are project-wide, built on a
lightweight import graph and per-module symbol table
(:mod:`repro.lint.project`): timebase-flow checks (T101–T103), trace
contract checks against the runtime's own event schema (E201–E204), and
RNG stream-discipline checks (R301–R303).

Rules carry stable codes, findings can be suppressed per line with
``# reprolint: disable=<code>`` pragmas, and a JSON baseline file can
grandfather existing findings while gating new ones
(:mod:`repro.lint.diagnostics`). ``docs/static-analysis.md`` documents
each rule and the suppression policy.
"""

from __future__ import annotations

from repro.lint.diagnostics import (
    Baseline,
    Diagnostic,
    apply_baseline,
    load_baseline,
    render_json,
    write_baseline,
)
from repro.lint.engine import ALL_RULES, lint_file, lint_paths, package_relative
from repro.lint.flowrules import FLOW_RULES
from repro.lint.project import ModuleInfo, ProjectModel, build_module_info
from repro.lint.rules import RULES, FileContext, LintConfig, Rule

__all__ = [
    "ALL_RULES",
    "Baseline",
    "Diagnostic",
    "FLOW_RULES",
    "FileContext",
    "LintConfig",
    "ModuleInfo",
    "ProjectModel",
    "RULES",
    "Rule",
    "apply_baseline",
    "build_module_info",
    "lint_file",
    "lint_paths",
    "load_baseline",
    "package_relative",
    "render_json",
    "write_baseline",
]
