"""Beacon-window contention resolution.

One beacon window is resolved on the real time axis: every candidate
``(station, scheduled_tx_time)`` - the time its backoff timer expires as
measured in *true* time, so clock skew between stations is honoured - is
processed in time order under three rules:

1. **Cancel on reception** (802.11 TSF rule): a station whose timer expires
   at or after the end of an earlier *successful* transmission cancels its
   pending beacon.
2. **Carrier sense**: a station whose timer expires while the medium is
   busy, but more than ``cca_us`` after the busy transmission started,
   defers to the end of the busy period.
3. **Collision**: stations starting within ``cca_us`` of an ongoing
   transmission's start are inside the carrier-sense vulnerability window
   and garble it; none of the colliding frames is received by anyone.

This cascade allows several transmissions per window (collision, then a
retry group, then possibly a late success), matching the behaviour TSF
scalability studies model, and degenerates to the classic
"unique-minimum-slot wins" rule when all stations share one perfect clock.
A slot-granular shortcut of that rule (:func:`resolve_slotted`) is provided
for the vectorised fast lane.
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple, TypeVar

import numpy as np

from repro.obs.counters import count
from repro.obs.events import emit

T = TypeVar("T")


@dataclass(frozen=True)
class Transmission:
    """One on-air transmission (possibly a collision of several frames)."""

    start_us: float
    end_us: float
    members: Tuple[int, ...]

    @property
    def success(self) -> bool:
        """True when exactly one station transmitted (decodable frame)."""
        return len(self.members) == 1


@dataclass
class ContentionResult:
    """Outcome of one beacon window."""

    transmissions: List[Transmission] = field(default_factory=list)
    cancelled: List[int] = field(default_factory=list)

    @property
    def winner(self) -> Optional[int]:
        """Station whose beacon was successfully transmitted first, if any."""
        for tx in self.transmissions:
            if tx.success:
                return tx.members[0]
        return None

    @property
    def first_success(self) -> Optional[Transmission]:
        """The first successful transmission, if any."""
        for tx in self.transmissions:
            if tx.success:
                return tx
        return None

    @property
    def collisions(self) -> int:
        """Number of collided transmissions in the window."""
        return sum(1 for tx in self.transmissions if not tx.success)


def resolve_contention(
    candidates: Sequence[Tuple[int, float]],
    airtime_us: float,
    cca_us: float,
) -> ContentionResult:
    """Resolve one beacon window.

    Parameters
    ----------
    candidates:
        ``(station, scheduled_tx_true_time_us)`` pairs; a station appears at
        most once.
    airtime_us:
        Time one beacon occupies the medium.
    cca_us:
        Carrier-sense vulnerability window (see module docstring).

    Notes
    -----
    Cancellation uses the *successful transmission* itself, not the
    per-receiver packet-error draw - i.e. we assume the cancelling station
    heard the beacon. With the paper's PER of 1e-4 the distinction is
    negligible and this is the standard simplification.
    """
    if airtime_us <= 0 or cca_us <= 0:
        raise ValueError("airtime_us and cca_us must be > 0")
    seen = set()
    for station, _ in candidates:
        if station in seen:
            raise ValueError(f"station {station} listed twice in contention")
        seen.add(station)

    counter = itertools.count()
    heap: List[Tuple[float, int, int]] = []
    for station, t in candidates:
        heapq.heappush(heap, (float(t), next(counter), station))
    count("mac.contention_round")
    count("mac.contention_candidates", len(candidates))

    result = ContentionResult()
    cur_start: Optional[float] = None
    cur_end = 0.0
    cur_members: List[int] = []
    success_done_at: Optional[float] = None

    def close_group() -> None:
        nonlocal cur_start, cur_members, success_done_at
        if cur_start is None:
            return
        tx = Transmission(cur_start, cur_end, tuple(cur_members))
        result.transmissions.append(tx)
        if tx.success and success_done_at is None:
            success_done_at = tx.end_us
        cur_start = None
        cur_members = []

    while heap:
        t, _, station = heapq.heappop(heap)
        if cur_start is not None and t >= cur_end:
            close_group()
        if success_done_at is not None and t >= success_done_at:
            result.cancelled.append(station)
            continue
        if cur_start is None:
            cur_start = t
            cur_end = t + airtime_us
            cur_members = [station]
        elif t - cur_start < cca_us:
            cur_members.append(station)  # inside vulnerability window: collision
        else:
            # Medium sensed busy: defer to the end of the busy period.
            heapq.heappush(heap, (cur_end, next(counter), station))
    close_group()
    first = result.first_success
    if first is not None:
        emit(
            "contention_win",
            t_us=first.start_us,
            node=first.members[0],
            contenders=len(candidates),
            collisions=result.collisions,
        )
    return result


def partition_domains(
    candidates: Sequence[T],
    member_ids: Sequence[int],
    groups: Optional[Dict[int, int]],
    candidate_id: Callable[[T], int] = lambda c: c[0],  # type: ignore[index]
) -> List[Tuple[List[T], List[int]]]:
    """Split one beacon window into independent hearing domains.

    ``groups`` maps node id -> partition group (a network-partition
    fault); ``None`` means the medium is whole and everything resolves
    in a single domain. Nodes missing from ``groups`` are isolated from
    every listed group (they match no group id), mirroring how a
    physical partition silences stragglers. Returns
    ``(domain_candidates, domain_member_ids)`` pairs in sorted group
    order; each domain runs its own contention cascade, which is how
    two references can coexist until the network heals.
    """
    if groups is None:
        return [(list(candidates), list(member_ids))]
    domains: List[Tuple[List[T], List[int]]] = []
    for group in sorted(set(groups.values())):
        members = [nid for nid in member_ids if groups.get(nid) == group]
        domain_candidates = [
            c for c in candidates if groups.get(candidate_id(c)) == group
        ]
        domains.append((domain_candidates, members))
    return domains


@dataclass
class NeighborhoodResult:
    """Outcome of spatial carrier sensing over one beacon window."""

    #: ``(station, start_time)`` of every transmission that went on air,
    #: in start-time order.
    kept: List[Tuple[int, float]] = field(default_factory=list)
    #: Stations that sensed the medium busy and cancelled.
    cancelled: List[int] = field(default_factory=list)


def resolve_neighborhood(
    candidates: Sequence[Tuple[int, float]],
    airtime_us: float,
    hears: Callable[[int], Iterable[int]],
) -> NeighborhoodResult:
    """Carrier sensing over an arbitrary hearing graph.

    The single-hop cascade (:func:`resolve_contention`) assumes every
    station hears every other; in a spatial network a transmission only
    silences the sender's audible neighborhood, so several transmissions
    can legitimately share a window (spatial reuse) and hidden terminals
    can still collide at a receiver. This resolver generalises the
    busy-medium rule to arbitrary per-station hearing sets:

    * candidates are processed in scheduled-time order (ties in input
      order, matching the deterministic engines);
    * a station whose medium is busy at its scheduled instant cancels
      (relays do not defer: they retry next period's window);
    * a transmission marks every station in ``hears(sender)`` busy until
      the frame ends.

    Receiver-side collision grouping (two audible frames overlapping at
    one receiver) is the channel's job, not the MAC's — see
    :meth:`repro.phy.channel.SpatialBroadcastChannel.deliver_window`.
    """
    if airtime_us <= 0:
        raise ValueError("airtime_us must be > 0")
    count("mac.neighborhood_round")
    count("mac.contention_candidates", len(candidates))
    result = NeighborhoodResult()
    busy_until: Dict[int, float] = {}
    for station, start in sorted(candidates, key=lambda c: c[1]):
        if busy_until.get(station, -math.inf) > start:
            result.cancelled.append(station)
            continue
        result.kept.append((station, start))
        emit(
            "contention_win",
            t_us=start,
            node=station,
            contenders=len(candidates),
        )
        end = start + airtime_us
        for neighbor in hears(station):
            if end > busy_until.get(neighbor, -math.inf):
                busy_until[neighbor] = end
    return result


def draw_slots(
    stations: Sequence[int],
    w: int,
    rng: np.random.Generator,
) -> Dict[int, int]:
    """Draw one uniform backoff slot in ``[0, w]`` per station.

    The standard defines the beacon generation window as ``w + 1`` slots,
    with the delay uniform over them.
    """
    if w < 0:
        raise ValueError(f"w must be >= 0, got {w}")
    if not stations:
        return {}
    count("mac.slot_draws", len(stations))
    slots = rng.integers(0, w + 1, size=len(stations))
    return {station: int(slot) for station, slot in zip(stations, slots)}


def resolve_slotted(slots: Dict[int, int]) -> Tuple[Optional[int], bool]:
    """Classic slot-granular rule: the unique minimum slot wins.

    Returns ``(winner, collided)``: ``winner`` is the station holding the
    unique smallest slot or None; ``collided`` is True when two or more
    stations shared the smallest slot (no beacon that window). This is the
    approximation the vectorised fast lane uses; the cascade above is the
    reference behaviour.
    """
    if not slots:
        return None, False
    min_slot = min(slots.values())
    holders = [s for s, slot in slots.items() if slot == min_slot]
    if len(holders) == 1:
        return holders[0], False
    return None, True
