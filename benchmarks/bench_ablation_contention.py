"""Ablation: contention model - carrier-sense cascade vs slotted rule.

DESIGN.md calls the skew-exact cascade a load-bearing choice: the classic
"unique minimum slot wins" rule deadlocks large elections (exact ties
always collide), while the cascade lets clock skew de-quantise
transmissions so a 500-node SSTSP election concludes. This bench measures
both models head-to-head on the same draws.
"""

from __future__ import annotations

import numpy as np

from conftest import paper_rows

from repro.mac.contention import draw_slots, resolve_contention, resolve_slotted

N_WINDOWS = 300


def _simulate(n_nodes: int, skew_spread_us: float, rng: np.random.Generator):
    """Count window successes under both models over N_WINDOWS windows."""
    cascade_wins = 0
    slotted_wins = 0
    for _ in range(N_WINDOWS):
        slots = draw_slots(list(range(n_nodes)), w=30, rng=rng)
        skews = rng.uniform(-skew_spread_us, skew_spread_us, size=n_nodes)
        candidates = [(i, s * 9.0 + skews[i]) for i, s in slots.items()]
        if resolve_contention(candidates, 63.0, 9.0).winner is not None:
            cascade_wins += 1
        if resolve_slotted(slots)[0] is not None:
            slotted_wins += 1
    return cascade_wins, slotted_wins


def test_cascade_resolves_where_slotted_deadlocks(benchmark):
    rng = np.random.default_rng(7)
    rows = benchmark.pedantic(
        lambda: {
            (n, spread): _simulate(n, spread, rng)
            for n in (50, 500)
            for spread in (0.0, 200.0)
        },
        rounds=1,
        iterations=1,
    )
    # with zero skew both models agree that 500-node windows deadlock
    assert rows[(500, 0.0)][1] == 0
    # with realistic skew spread the cascade recovers successes the
    # slotted rule cannot represent
    assert rows[(500, 200.0)][0] > rows[(500, 200.0)][1] * 3
    paper_rows(
        benchmark,
        "ablation: contention model (success rate / window)",
        [
            f"n={n} skew=+-{spread:.0f}us: cascade={c / N_WINDOWS:.0%} "
            f"slotted={s / N_WINDOWS:.0%}"
            for (n, spread), (c, s) in sorted(rows.items())
        ],
    )


def test_cascade_throughput(benchmark):
    """Raw resolution speed at election scale (500 candidates)."""
    rng = np.random.default_rng(3)
    slots = draw_slots(list(range(500)), w=30, rng=rng)
    skews = rng.uniform(-200, 200, size=500)
    candidates = [(i, s * 9.0 + skews[i]) for i, s in slots.items()]
    result = benchmark(lambda: resolve_contention(candidates, 63.0, 9.0))
    assert result.transmissions or result.cancelled
