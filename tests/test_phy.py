"""Unit tests for PHY parameters and the broadcast channel."""

import numpy as np
import pytest

from repro.phy.channel import BroadcastChannel, ChannelStats, merge_stats
from repro.phy.params import (
    OFDM_54MBPS,
    PhyParams,
    SSTSP_BEACON_AIRTIME_SLOTS,
    SSTSP_BEACON_BYTES,
    TSF_BEACON_AIRTIME_SLOTS,
    TSF_BEACON_BYTES,
)


class TestPhyParams:
    def test_paper_beacon_sizes(self):
        assert TSF_BEACON_BYTES == 56
        assert SSTSP_BEACON_BYTES == 92

    def test_paper_airtimes(self):
        assert TSF_BEACON_AIRTIME_SLOTS == 4
        assert SSTSP_BEACON_AIRTIME_SLOTS == 7
        assert OFDM_54MBPS.beacon_airtime_us == pytest.approx(36.0)
        assert OFDM_54MBPS.with_beacon_airtime(7).beacon_airtime_us == pytest.approx(63.0)

    def test_ofdm_slot_time(self):
        assert OFDM_54MBPS.slot_time_us == 9.0

    def test_airtime_for_bytes(self):
        # 56 bytes at 54 Mbps = 448 bits / 54 bit/us
        assert OFDM_54MBPS.airtime_us_for_bytes(56) == pytest.approx(448 / 54)

    def test_validation(self):
        with pytest.raises(ValueError):
            PhyParams(slot_time_us=0)
        with pytest.raises(ValueError):
            PhyParams(packet_error_rate=1.5)
        with pytest.raises(ValueError):
            PhyParams(beacon_airtime_slots=0)
        with pytest.raises(ValueError):
            PhyParams(propagation_delay_us=-1)
        with pytest.raises(ValueError):
            PhyParams(cca_us=0)


class TestBroadcastChannel:
    def test_lossless_delivery(self, rng):
        channel = BroadcastChannel(PhyParams(packet_error_rate=0.0), rng)
        got = channel.broadcast(0, [0, 1, 2, 3], true_time=0.0, size_bytes=56)
        assert got == [1, 2, 3]  # sender excluded
        assert channel.stats.deliveries == 3
        assert channel.stats.bytes_on_air == 56

    def test_per_drops_expected_fraction(self, rng):
        channel = BroadcastChannel(PhyParams(packet_error_rate=0.2), rng)
        receivers = list(range(1, 2001))
        got = channel.broadcast(0, receivers, 0.0, 56)
        ratio = len(got) / len(receivers)
        assert 0.75 < ratio < 0.85
        assert channel.stats.per_drops == len(receivers) - len(got)

    def test_jam_window_blocks_everything(self, rng):
        channel = BroadcastChannel(PhyParams(packet_error_rate=0.0), rng)
        channel.add_jam_window(100.0, 200.0)
        assert channel.is_jammed(150.0)
        assert not channel.is_jammed(200.0)  # half-open
        got = channel.broadcast(0, [1, 2], true_time=150.0, size_bytes=56)
        assert got == []
        assert channel.stats.jammed_drops == 2

    def test_jam_window_validation(self, rng):
        channel = BroadcastChannel(PhyParams(), rng)
        with pytest.raises(ValueError):
            channel.add_jam_window(5.0, 5.0)

    def test_timestamp_error_bounded(self, rng):
        phy = PhyParams(timestamp_jitter_us=2.0)
        channel = BroadcastChannel(phy, rng)
        errors = channel.sample_timestamp_errors(10_000)
        assert np.all(np.abs(errors) <= 2.0)
        assert abs(errors.mean()) < 0.1
        scalar = channel.sample_timestamp_error()
        assert abs(scalar) <= 2.0

    def test_zero_jitter(self, rng):
        channel = BroadcastChannel(PhyParams(timestamp_jitter_us=0.0), rng)
        assert channel.sample_timestamp_error() == 0.0
        assert np.all(channel.sample_timestamp_errors(5) == 0.0)

    def test_record_collision_counts_parties(self, rng):
        channel = BroadcastChannel(PhyParams(), rng)
        channel.record_collision(3)
        assert channel.stats.collisions == 1
        assert channel.stats.transmissions == 3

    def test_delivery_ratio(self, rng):
        stats = ChannelStats(deliveries=90, per_drops=10)
        assert stats.delivery_ratio() == pytest.approx(0.9)
        assert ChannelStats().delivery_ratio() == 1.0

    def test_merge_stats(self):
        a = ChannelStats(transmissions=1, deliveries=2, bytes_on_air=56)
        b = ChannelStats(transmissions=3, collisions=1, per_drops=4)
        total = merge_stats([a, b])
        assert total.transmissions == 4
        assert total.collisions == 1
        assert total.deliveries == 2
        assert total.per_drops == 4
        assert total.bytes_on_air == 56


class TestJamWindowIndex:
    def test_out_of_order_and_overlapping_windows(self, rng):
        channel = BroadcastChannel(PhyParams(), rng)
        # inserted out of order, with overlaps and containment
        channel.add_jam_window(500.0, 600.0)
        channel.add_jam_window(100.0, 400.0)   # long window first by start
        channel.add_jam_window(150.0, 200.0)   # contained in the previous
        channel.add_jam_window(350.0, 550.0)   # bridges two windows
        for t in (100.0, 150.0, 199.0, 250.0, 399.9, 400.0, 450.0, 599.9):
            assert channel.is_jammed(t), t
        for t in (0.0, 99.9, 600.0, 1_000.0):
            assert not channel.is_jammed(t), t

    def test_query_before_first_window(self, rng):
        channel = BroadcastChannel(PhyParams(), rng)
        channel.add_jam_window(100.0, 200.0)
        assert not channel.is_jammed(50.0)

    def test_many_windows_match_linear_scan(self, rng):
        channel = BroadcastChannel(PhyParams(), rng)
        windows = [
            (float(s), float(s + d))
            for s, d in zip(
                rng.integers(0, 10_000, size=200),
                rng.integers(1, 500, size=200),
            )
        ]
        for start, end in windows:
            channel.add_jam_window(start, end)
        for t in rng.uniform(-100, 11_000, size=500):
            expected = any(s <= t < e for s, e in windows)
            assert channel.is_jammed(float(t)) == expected, t


class TestPerOverride:
    def test_override_forces_whole_frame_loss(self, rng):
        channel = BroadcastChannel(PhyParams(packet_error_rate=0.0), rng)
        channel.set_per_override(1.0)
        assert channel.broadcast(0, [1, 2, 3], 0.0, 56) == []
        assert channel.stats.per_drops == 3
        channel.set_per_override(None)
        assert channel.broadcast(0, [1, 2, 3], 0.0, 56) == [1, 2, 3]

    def test_override_validation(self, rng):
        channel = BroadcastChannel(PhyParams(), rng)
        with pytest.raises(ValueError):
            channel.set_per_override(1.5)
        with pytest.raises(ValueError):
            channel.set_per_override(-0.1)


class TestGilbertElliott:
    def test_validation(self):
        with pytest.raises(ValueError):
            PhyParams(loss_model="gilbert_elliott", ge_per_bad=1.5)
        with pytest.raises(ValueError):
            PhyParams(loss_model="gilbert_elliott", ge_p_good_to_bad=-0.1)
        with pytest.raises(ValueError):
            PhyParams(loss_model="weibull")

    def test_good_state_uses_base_rate(self, rng):
        phy = PhyParams(
            loss_model="gilbert_elliott",
            packet_error_rate=0.0,
            ge_p_good_to_bad=0.0,  # never leaves the good state
        )
        channel = BroadcastChannel(phy, rng)
        for _ in range(50):
            assert channel.broadcast(0, [1, 2], 0.0, 56) == [1, 2]

    def test_bad_state_loses_whole_frames(self, rng):
        phy = PhyParams(
            loss_model="gilbert_elliott",
            packet_error_rate=0.0,
            ge_p_good_to_bad=1.0,   # enters bad immediately...
            ge_p_bad_to_good=0.0,   # ...and stays there
            ge_per_bad=1.0,
        )
        channel = BroadcastChannel(phy, rng)
        for _ in range(10):
            assert channel.broadcast(0, [1, 2], 0.0, 56) == []
        assert channel.stats.per_drops == 20

    def test_burstiness_of_losses(self, rng):
        phy = PhyParams(
            loss_model="gilbert_elliott",
            packet_error_rate=0.0,
            ge_p_good_to_bad=0.05,
            ge_p_bad_to_good=0.25,
            ge_per_bad=1.0,
        )
        channel = BroadcastChannel(phy, rng)
        outcomes = [
            bool(channel.broadcast(0, [1], 0.0, 56)) for _ in range(5_000)
        ]
        losses = outcomes.count(False)
        # stationary bad-state probability = 0.05 / (0.05 + 0.25)
        assert 0.10 < losses / len(outcomes) < 0.25
        # losses cluster: the loss-after-loss rate exceeds the marginal rate
        pairs = sum(
            1 for a, b in zip(outcomes, outcomes[1:]) if not a and not b
        )
        assert pairs / max(losses, 1) > 0.4


class TestGilbertElliottStatistics:
    """Statistical validation of the burst-loss chain over 10^5 draws.

    The chain's stationary behaviour is known in closed form, so the
    empirical loss rate, the conditional bad-state loss rate, and the
    bad-state sojourn length can all be checked against analytic values
    with principled confidence bounds. The state sequence is Markov (not
    i.i.d.), so the loss-rate bound uses the effective sample size under
    the chain's lag-1 autocorrelation ``1 - p_gb - p_bg``.
    """

    N = 100_000
    P_GB = 0.02   # good -> bad (the defaults of PhyParams)
    P_BG = 0.25   # bad -> good
    PER_BAD = 0.6
    PER_GOOD = 1e-4

    @pytest.fixture
    def draws(self, rng):
        """(lost, was_bad) per transmission, one chain step each."""
        phy = PhyParams(
            loss_model="gilbert_elliott",
            packet_error_rate=self.PER_GOOD,
            ge_p_good_to_bad=self.P_GB,
            ge_p_bad_to_good=self.P_BG,
            ge_per_bad=self.PER_BAD,
        )
        channel = BroadcastChannel(phy, rng)
        lost = np.empty(self.N, dtype=bool)
        was_bad = np.empty(self.N, dtype=bool)
        for i in range(self.N):
            lost[i] = not channel.broadcast(0, [1], 0.0, 56)
            # the chain advances before the loss coin, so the state after
            # broadcast() is the state that biased this draw
            was_bad[i] = channel._ge_bad
        return lost, was_bad

    def test_loss_rate_matches_stationary_value(self, draws):
        lost, _ = draws
        pi_bad = self.P_GB / (self.P_GB + self.P_BG)
        expected = pi_bad * self.PER_BAD + (1.0 - pi_bad) * self.PER_GOOD
        # effective sample size under the chain's autocorrelation
        r = 1.0 - self.P_GB - self.P_BG
        ess = self.N * (1.0 - r) / (1.0 + r)
        se = np.sqrt(expected * (1.0 - expected) / ess)
        assert abs(lost.mean() - expected) < 6.0 * se

    def test_state_occupancy_matches_stationary_distribution(self, draws):
        _, was_bad = draws
        pi_bad = self.P_GB / (self.P_GB + self.P_BG)
        r = 1.0 - self.P_GB - self.P_BG
        ess = self.N * (1.0 - r) / (1.0 + r)
        se = np.sqrt(pi_bad * (1.0 - pi_bad) / ess)
        assert abs(was_bad.mean() - pi_bad) < 6.0 * se

    def test_conditional_loss_rate_in_bad_state(self, draws):
        lost, was_bad = draws
        bad_losses = lost[was_bad]
        # given the state, loss coins are i.i.d. Bernoulli(PER_BAD)
        se = np.sqrt(self.PER_BAD * (1.0 - self.PER_BAD) / bad_losses.size)
        assert abs(bad_losses.mean() - self.PER_BAD) < 6.0 * se
        # and the good state is near-lossless by construction
        assert lost[~was_bad].mean() < 0.005

    def test_mean_burst_length_is_geometric(self, draws):
        _, was_bad = draws
        # completed bad-state sojourns (drop a possible trailing open run)
        edges = np.flatnonzero(np.diff(was_bad.astype(np.int8)))
        runs = []
        start = None
        for i in range(1, len(was_bad)):
            if was_bad[i] and not was_bad[i - 1]:
                start = i
            elif not was_bad[i] and was_bad[i - 1] and start is not None:
                runs.append(i - start)
        assert len(runs) > 500, "need enough sojourns for a stable mean"
        runs = np.asarray(runs, dtype=float)
        mean_expected = 1.0 / self.P_BG       # geometric mean sojourn
        sd = np.sqrt(1.0 - self.P_BG) / self.P_BG
        se = sd / np.sqrt(runs.size)
        assert abs(runs.mean() - mean_expected) < 6.0 * se
        assert edges.size >= 2 * len(runs) - 2  # sanity: runs alternate
