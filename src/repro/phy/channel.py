"""Broadcast channels with loss, jamming and (spatially) collisions.

For the single-hop IBSS (:class:`BroadcastChannel`) collisions are
resolved *before* delivery by the MAC contention cascade
(:mod:`repro.mac.contention`); the channel's job is the per-receiver fate
of an un-collided transmission: a packet-error draw per receiver or per
transmission (including the Gilbert-Elliott burst-loss chain), suppression
during jamming windows, and bookkeeping for the traffic-overhead model.

:class:`SpatialBroadcastChannel` extends this to a radio topology: a
receiver hears exactly its graph neighbours, and two audible frames that
overlap in time collide *at that receiver only* (hidden terminals). The
multi-hop lane delivers its whole beacon window through
:meth:`SpatialBroadcastChannel.deliver_window`, which is what gives it
the same loss models, jam windows and fault overrides as the single-hop
lane — plus per-link error overrides and receiver-scoped jamming that a
spatial network additionally supports.

Fault injection (:mod:`repro.faults`) can force a temporary
per-transmission loss probability (:meth:`BroadcastChannel.set_per_override`)
to model loss bursts independent of the configured loss model.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from repro.obs.counters import count
from repro.phy.params import PhyParams

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.multihop.topology import Topology


@dataclass
class ChannelStats:
    """Running counters over the life of a channel."""

    transmissions: int = 0
    collisions: int = 0
    deliveries: int = 0
    per_drops: int = 0
    jammed_drops: int = 0
    bytes_on_air: int = 0

    def delivery_ratio(self) -> float:
        """Delivered / attempted receiver-deliveries (1.0 when nothing sent)."""
        attempted = self.deliveries + self.per_drops + self.jammed_drops
        return self.deliveries / attempted if attempted else 1.0


class BroadcastChannel:
    """Fully connected wireless broadcast domain (an IBSS).

    Parameters
    ----------
    phy:
        Timing/loss parameters.
    rng:
        Stream for the per-receiver packet-error draws (and the
        Gilbert-Elliott state transitions when that loss model is on).
    """

    def __init__(self, phy: PhyParams, rng: np.random.Generator) -> None:
        self.phy = phy
        self._rng = rng
        self.stats = ChannelStats()
        # Jam windows sorted by start; _jam_max_end[i] is the prefix
        # maximum of end times over windows[0..i], so a membership query
        # is one bisect instead of a scan over all windows (chaos plans
        # add many windows per run).
        self._jam_windows: List[Tuple[float, float]] = []
        self._jam_starts: List[float] = []
        self._jam_max_end: List[float] = []
        self._per_override: Optional[float] = None
        self._ge_bad = False

    def add_jam_window(self, start_us: float, end_us: float) -> None:
        """Suppress all receptions whose transmission starts in
        ``[start_us, end_us)`` (true time). Used by pulse-delay attacks
        and injected jam faults."""
        if end_us <= start_us:
            raise ValueError("jam window must have end > start")
        window = (float(start_us), float(end_us))
        idx = bisect.bisect_right(self._jam_starts, window[0])
        self._jam_windows.insert(idx, window)
        self._jam_starts.insert(idx, window[0])
        # Rebuild the prefix maximum from the insertion point on.
        del self._jam_max_end[idx:]
        running = self._jam_max_end[-1] if self._jam_max_end else -np.inf
        for _, end in self._jam_windows[idx:]:
            running = max(running, end)
            self._jam_max_end.append(running)

    def is_jammed(self, true_time: float) -> bool:
        """Whether a transmission starting at ``true_time`` is jammed."""
        idx = bisect.bisect_right(self._jam_starts, true_time) - 1
        return idx >= 0 and true_time < self._jam_max_end[idx]

    def set_per_override(self, per: Optional[float]) -> None:
        """Force a per-transmission loss probability (None restores the
        configured loss model). Fault injection uses this for loss bursts."""
        if per is not None and not 0.0 <= per <= 1.0:
            raise ValueError("per override must be in [0, 1] or None")
        self._per_override = per

    def record_collision(self, parties: int) -> None:
        """Account a collision of ``parties`` simultaneous transmitters."""
        self.stats.collisions += 1
        self.stats.transmissions += parties

    def _gilbert_elliott_per(self) -> float:
        """Advance the two-state loss chain once and return the loss
        probability for this transmission."""
        phy = self.phy
        count("phy.ge_step")
        if self._ge_bad:
            if self._rng.random() < phy.ge_p_bad_to_good:
                self._ge_bad = False
        else:
            if self._rng.random() < phy.ge_p_good_to_bad:
                self._ge_bad = True
        return phy.ge_per_bad if self._ge_bad else phy.packet_error_rate

    def broadcast(
        self,
        sender: int,
        receivers: Sequence[int],
        true_time: float,
        size_bytes: int,
    ) -> List[int]:
        """Deliver one un-collided transmission; return receivers that decode it.

        With ``loss_model="per_receiver"`` each receiver independently
        loses the frame with probability ``phy.packet_error_rate``; with
        ``"per_transmission"`` one coin decides for everyone; with
        ``"gilbert_elliott"`` the per-transmission coin's bias follows the
        two-state burst chain. If ``true_time`` falls in a jam window,
        nobody receives.
        """
        self.stats.transmissions += 1
        self.stats.bytes_on_air += size_bytes
        receivers = [r for r in receivers if r != sender]
        count("phy.broadcast")
        count("phy.delivery_attempt", len(receivers))
        if not receivers:
            return []
        if self.is_jammed(true_time):
            self.stats.jammed_drops += len(receivers)
            return []
        if self._per_override is not None:
            per = self._per_override
            whole_frame = True
        elif self.phy.loss_model == "gilbert_elliott":
            per = self._gilbert_elliott_per()
            whole_frame = True
        else:
            per = self.phy.packet_error_rate
            whole_frame = self.phy.loss_model == "per_transmission"
        if per <= 0.0:
            self.stats.deliveries += len(receivers)
            return list(receivers)
        if whole_frame:
            count("phy.per_draw")
            if self._rng.random() < per:
                self.stats.per_drops += len(receivers)
                return []
            self.stats.deliveries += len(receivers)
            return list(receivers)
        count("phy.per_draw", len(receivers))
        lost = self._rng.random(len(receivers)) < per
        delivered = [r for r, drop in zip(receivers, lost) if not drop]
        self.stats.per_drops += len(receivers) - len(delivered)
        self.stats.deliveries += len(delivered)
        return delivered

    def sample_timestamp_error(self) -> float:
        """Receive-side timestamping error for one reception.

        Uniform in ``+- timestamp_jitter_us``; this is the source of the
        paper's ``epsilon`` bound on ``|ts_ref - t_ref|``.
        """
        count("phy.ts_jitter_draw")
        j = self.phy.timestamp_jitter_us
        if j == 0.0:
            return 0.0
        return float(self._rng.uniform(-j, j))

    def sample_timestamp_errors(self, n: int) -> np.ndarray:
        """Vectorised version of :meth:`sample_timestamp_error`."""
        j = self.phy.timestamp_jitter_us
        if j == 0.0:
            return np.zeros(n)
        return self._rng.uniform(-j, j, size=n)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"BroadcastChannel(stats={self.stats})"


@dataclass
class WindowDelivery:
    """Outcome of one spatial beacon window.

    Attributes
    ----------
    receptions:
        Receiver id -> sender ids whose frames it decoded, in
        transmission-time order.
    collisions:
        Number of receiver-side collision groups (two or more audible
        frames overlapping at one receiver).
    """

    receptions: Dict[int, List[int]] = field(default_factory=dict)
    collisions: int = 0


class SpatialBroadcastChannel(BroadcastChannel):
    """Topology-aware broadcast channel for the multi-hop lane.

    A receiver hears exactly its graph neighbours; collision grouping is
    therefore *per receiver* (hidden terminals garble each other at a
    common neighbour even though the MAC let both transmit). Loss models,
    jam windows and fault overrides are inherited from
    :class:`BroadcastChannel`; two spatial-only effects are added on top:
    per-link error overrides (:meth:`set_link_per`) and receiver-scoped
    jam windows (:meth:`add_jam_window` with ``receivers``).
    """

    def __init__(
        self,
        phy: PhyParams,
        rng: np.random.Generator,
        topology: "Topology",
    ) -> None:
        super().__init__(phy, rng)
        self.topology = topology
        self._neighbor_sets: Dict[int, FrozenSet[int]] = {
            node: frozenset(topology.neighbors(node)) for node in range(topology.n)
        }
        self._link_per: Dict[Tuple[int, int], float] = {}
        self._scoped_jams: List[Tuple[float, float, FrozenSet[int]]] = []

    def set_link_per(
        self, sender: int, receiver: int, per: Optional[float]
    ) -> None:
        """Override the packet-error rate of one directed link
        (``None`` restores the channel-wide model for that link)."""
        if per is None:
            self._link_per.pop((sender, receiver), None)
            return
        if not 0.0 <= per <= 1.0:
            raise ValueError("link per must be in [0, 1] or None")
        self._link_per[(sender, receiver)] = float(per)

    def add_jam_window(
        self,
        start_us: float,
        end_us: float,
        receivers: Optional[Iterable[int]] = None,
    ) -> None:
        """Jam ``[start_us, end_us)``; with ``receivers`` given, only
        those stations are deafened (a localised jammer), otherwise the
        whole network is (matching the single-hop channel)."""
        if receivers is None:
            super().add_jam_window(start_us, end_us)
            return
        if end_us <= start_us:
            raise ValueError("jam window must have end > start")
        self._scoped_jams.append(
            (float(start_us), float(end_us), frozenset(receivers))
        )

    def _jammed_for(self, receiver: int, true_time: float) -> bool:
        if self.is_jammed(true_time):
            return True
        for start, end, targets in self._scoped_jams:
            if start <= true_time < end and receiver in targets:
                return True
        return False

    def deliver_window(
        self,
        transmissions: Sequence[Tuple[int, float]],
        receivers: Sequence[int],
        airtime_us: float,
        size_bytes: int = 0,
        audible: Optional[Callable[[int, int], bool]] = None,
    ) -> WindowDelivery:
        """Resolve one beacon window's receiver-side fates.

        Parameters
        ----------
        transmissions:
            ``(sender, start_true_time)`` of every frame that went on air
            (the MAC's :func:`repro.mac.contention.resolve_neighborhood`
            output), in start-time order.
        receivers:
            Stations listening this window (callers pass them in
            ascending id order — the draw order contract).
        airtime_us:
            Frame airtime (defines receiver-side overlap).
        size_bytes:
            Frame size, accounted once per transmission.
        audible:
            Optional extra gate ``(receiver, sender) -> bool`` applied on
            top of the topology (partition faults cut links this way).

        Per receiver, audible frames are grouped by time overlap: a group
        of two or more is a collision (nothing decodes, no loss draw); a
        lone frame survives jamming and one loss draw. With the default
        ``per_receiver`` loss model the draw happens per (receiver,
        frame); ``per_transmission`` / Gilbert-Elliott models and the
        fault-injection override draw one whole-frame fate per
        transmission, exactly like :meth:`BroadcastChannel.broadcast`.
        """
        if airtime_us <= 0:
            raise ValueError("airtime_us must be > 0")
        count("phy.window")
        self.stats.transmissions += len(transmissions)
        self.stats.bytes_on_air += size_bytes * len(transmissions)

        # Whole-frame fates (one draw per transmission, in time order)
        # when the loss model or a fault override calls for them.
        frame_delivered: Optional[Dict[int, bool]] = None
        if self._per_override is not None or self.phy.loss_model != "per_receiver":
            frame_delivered = {}
            for sender, _start in transmissions:
                if self._per_override is not None:
                    per = self._per_override
                elif self.phy.loss_model == "gilbert_elliott":
                    per = self._gilbert_elliott_per()
                else:
                    per = self.phy.packet_error_rate
                if per <= 0.0:
                    frame_delivered[sender] = True
                else:
                    count("phy.per_draw")
                    frame_delivered[sender] = bool(self._rng.random() >= per)

        delivery = WindowDelivery()
        static_per = self.phy.packet_error_rate
        for receiver in receivers:
            hears = self._neighbor_sets.get(receiver, frozenset())
            heard = [
                (sender, start)
                for sender, start in transmissions
                if sender in hears
                and (audible is None or audible(receiver, sender))
            ]
            if not heard:
                continue
            heard.sort(key=lambda item: item[1])
            decoded: List[int] = []
            index = 0
            while index < len(heard):
                group_end = heard[index][1] + airtime_us
                j = index + 1
                while j < len(heard) and heard[j][1] < group_end:
                    group_end = max(group_end, heard[j][1] + airtime_us)
                    j += 1
                group = heard[index:j]
                index = j
                if len(group) > 1:
                    count("phy.collision_group")
                    delivery.collisions += 1
                    self.stats.collisions += 1
                    continue
                sender, start = group[0]
                count("phy.delivery_attempt")
                if self._jammed_for(receiver, start):
                    self.stats.jammed_drops += 1
                    continue
                link = self._link_per.get((sender, receiver))
                if link is not None:
                    if link <= 0.0:
                        ok = True
                    else:
                        count("phy.per_draw")
                        ok = bool(self._rng.random() >= link)
                elif frame_delivered is not None:
                    ok = frame_delivered[sender]
                elif static_per <= 0.0:
                    ok = True
                else:
                    count("phy.per_draw")
                    ok = bool(self._rng.random() >= static_per)
                if ok:
                    self.stats.deliveries += 1
                    decoded.append(sender)
                else:
                    self.stats.per_drops += 1
            if decoded:
                delivery.receptions[receiver] = decoded
        return delivery


def merge_stats(stats: Iterable[ChannelStats]) -> ChannelStats:
    """Aggregate several channels' counters (multi-replica experiments)."""
    total = ChannelStats()
    for s in stats:
        total.transmissions += s.transmissions
        total.collisions += s.collisions
        total.deliveries += s.deliveries
        total.per_drops += s.per_drops
        total.jammed_drops += s.jammed_drops
        total.bytes_on_air += s.bytes_on_air
    return total
