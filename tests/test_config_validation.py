"""Exhaustive validation tests on every public config dataclass."""

import pytest

from repro.core.config import SstspConfig
from repro.network.ibss import AttackerSpec, ScenarioSpec
from repro.network.runner import RunnerParams
from repro.phy.params import PhyParams


class TestSstspConfig:
    def test_defaults_paper_values(self):
        config = SstspConfig()
        assert config.beacon_period_us == 100_000.0
        assert config.w == 30
        assert config.l == 1
        assert config.m == 2
        assert config.optimal_m == 4

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"beacon_period_us": 0},
            {"w": -1},
            {"slot_time_us": 0},
            {"l": 0},
            {"m": 0},
            {"guard_fine_us": 0},
            {"guard_coarse_us": 0},
            {"guard_fine_us": 5_000.0},  # looser than coarse: inverted
            {"coarse_min_samples": 0},
            {"k_clamp": 0.0},
            {"k_clamp": 1.5},
            {"recovery_rejection_threshold": 0},
            {"reference_pace_clamp": 0.0},
            {"reference_pace_clamp": 0.5},  # above k_clamp
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            SstspConfig(**kwargs)

    def test_recovery_threshold_none_allowed(self):
        assert SstspConfig(recovery_rejection_threshold=None).recovery_rejection_threshold is None
        assert SstspConfig(recovery_rejection_threshold=5).recovery_rejection_threshold == 5

    def test_frozen(self):
        config = SstspConfig()
        with pytest.raises(AttributeError):
            config.m = 3


class TestPhyParams:
    def test_loss_model_validated(self):
        PhyParams(loss_model="per_receiver")
        PhyParams(loss_model="per_transmission")
        with pytest.raises(ValueError):
            PhyParams(loss_model="quantum")

    def test_timestamp_jitter_nonnegative(self):
        with pytest.raises(ValueError):
            PhyParams(timestamp_jitter_us=-1.0)


class TestScenarioSpec:
    def test_periods_property(self):
        assert ScenarioSpec(n=5, duration_s=2.5).periods == 25

    def test_attacker_spec_defaults(self):
        spec = AttackerSpec()
        assert spec.start_s == 400.0 and spec.end_s == 600.0
        assert spec.lead_slots == 5.0
        assert spec.error_offset_us == 50_000.0
        assert spec.shave_per_period_us == 40.0

    def test_churn_preset_validated_at_build(self):
        from repro.network.ibss import build_network

        with pytest.raises(ValueError):
            build_network(
                "tsf", ScenarioSpec(n=5, duration_s=1.0, churn="weird")
            )


class TestRunnerParams:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"beacon_period_us": 0},
            {"periods": 0},
            {"sample_offset_fraction": 0.0},
            {"sample_offset_fraction": 1.0},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            RunnerParams(**kwargs)

    def test_keep_values_default_off(self):
        assert RunnerParams().keep_values is False
