"""Property tests for the multi-hop extension's topology and invariants."""

import networkx as nx
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.multihop import MultiHopRunner, MultiHopSpec, Topology


class TestTopologyProperties:
    @given(n=st.integers(2, 40), seed=st.integers(0, 1000))
    @settings(max_examples=25, deadline=None)
    def test_two_hop_neighbors_contains_one_hop(self, n, seed):
        graph = nx.gnp_random_graph(n, 0.3, seed=seed)
        topology = Topology(graph)
        for node in range(n):
            one_hop = set(topology.neighbors(node))
            two_hop = set(topology.two_hop_neighbors(node))
            assert one_hop <= two_hop
            assert node not in two_hop

    @given(n=st.integers(2, 30), seed=st.integers(0, 1000))
    @settings(max_examples=25, deadline=None)
    def test_hop_distances_triangle(self, n, seed):
        graph = nx.gnp_random_graph(n, 0.4, seed=seed)
        assume(nx.is_connected(graph))
        topology = Topology(graph)
        hops = topology.hop_distances(0)
        for u, v in topology.edges():
            if u in hops and v in hops:
                assert abs(hops[u] - hops[v]) <= 1

    @given(rows=st.integers(2, 6), cols=st.integers(2, 6))
    @settings(max_examples=20)
    def test_grid_always_connected(self, rows, cols):
        topology = Topology.grid(rows, cols)
        assert topology.is_connected()
        assert topology.n == rows * cols
        assert topology.diameter() == (rows - 1) + (cols - 1)


class TestRunInvariants:
    @given(n=st.integers(3, 10), seed=st.integers(0, 50))
    @settings(max_examples=8, deadline=None)
    def test_chain_runs_never_crash_and_hops_consistent(self, n, seed):
        spec = MultiHopSpec(
            topology=Topology.chain(n), seed=seed, duration_s=8.0
        )
        runner = MultiHopRunner(spec)
        result = runner.run()
        # believed hops never beat BFS distance (the physical lower bound)
        true_hops = spec.topology.hop_distances(result.root)
        for i, state in enumerate(runner.nodes):
            if state.hop is not None and i in true_hops:
                assert state.hop >= true_hops[i]
        # adjusted clocks stay monotone everywhere
        for state in runner.nodes:
            assert state.clock.is_monotonic(0.0, 8.0e6, samples=64)
