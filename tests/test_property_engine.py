"""Property tests for the discrete-event kernel."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import Simulator


@given(
    times=st.lists(
        st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
        min_size=1,
        max_size=60,
    )
)
@settings(max_examples=100)
def test_events_fire_in_nondecreasing_time_order(times):
    sim = Simulator()
    fired = []
    for t in times:
        sim.schedule(t, lambda t=t: fired.append(sim.now))
    sim.run()
    assert fired == sorted(fired)
    assert len(fired) == len(times)


@given(
    times=st.lists(
        st.floats(min_value=0.0, max_value=1e6), min_size=2, max_size=40
    ),
    cancel_indices=st.sets(st.integers(0, 39), max_size=20),
)
@settings(max_examples=100)
def test_cancellation_is_exact(times, cancel_indices):
    sim = Simulator()
    fired = []
    handles = [
        sim.schedule(t, fired.append, i) for i, t in enumerate(times)
    ]
    cancelled = {i for i in cancel_indices if i < len(handles)}
    for i in cancelled:
        handles[i].cancel()
    sim.run()
    assert set(fired) == set(range(len(times))) - cancelled


@given(
    chain_lengths=st.integers(min_value=1, max_value=200),
    step=st.floats(min_value=0.001, max_value=1_000.0),
)
@settings(max_examples=50)
def test_self_scheduling_chain_runs_to_completion(chain_lengths, step):
    sim = Simulator()
    count = [0]

    def tick():
        count[0] += 1
        if count[0] < chain_lengths:
            sim.schedule_in(step, tick)

    sim.schedule(0.0, tick)
    sim.run()
    assert count[0] == chain_lengths
    assert sim.now >= step * (chain_lengths - 1) * 0.999
