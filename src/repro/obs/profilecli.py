"""``repro profile``: span + work-counter profiling of registered jobs.

Runs any registered sweep job (:mod:`repro.sweep.jobs`) under the
hierarchical span profiler and the deterministic work counters, then
writes two artifacts:

* ``<kind>-<spec_hash[:16]>.counters.json`` — the sorted work-counter
  snapshot. A pure function of the spec and seed, so repeated runs (on
  any machine, at any worker count) produce **byte-identical** files —
  ``repro profile diff`` on two of them is a zero-tolerance regression
  check.
* ``<kind>-<spec_hash[:16]>.chrome.json`` — the span timeline in Chrome
  trace-event JSON, loadable in Perfetto (ui.perfetto.dev),
  chrome://tracing or speedscope. Wall-clock times, so *not* byte-stable
  — it is the human-facing half of the profile.

::

    python -m repro profile run multihop_run \\
        --param topology=chain --param n=6 --param duration_s=8.0 --seed 3
    python -m repro profile diff a.counters.json b.counters.json

Parameter values are parsed as JSON when possible (``n=6`` is an int,
``duration_s=8.0`` a float) and fall back to strings (``topology=chain``).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Any, Dict, List, Optional

from repro.obs.counters import (
    count_work,
    diff_counts,
    format_report,
    load_counts_json,
    write_counts_json,
)
from repro.obs.profile import SpanProfiler, profile_spans

#: Where profile artifacts land unless ``--out-dir`` says otherwise.
DEFAULT_OUT_DIR = os.path.join("results", "profile")


def _parse_params(pairs: Optional[List[str]]) -> Dict[str, Any]:
    """``KEY=VALUE`` pairs to a params dict (JSON-coerced values)."""
    params: Dict[str, Any] = {}
    for pair in pairs or []:
        key, sep, raw = pair.partition("=")
        if not sep or not key:
            raise SystemExit(f"--param expects KEY=VALUE, got {pair!r}")
        try:
            params[key] = json.loads(raw)
        except json.JSONDecodeError:
            params[key] = raw
    return params


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.sweep.jobs import execute_job
    from repro.sweep.spec import JobSpec

    spec = JobSpec.make(
        args.kind, _parse_params(args.param), root_seed=args.seed
    )
    os.makedirs(args.out_dir, exist_ok=True)
    base = os.path.join(
        args.out_dir, f"{spec.kind}-{spec.spec_hash()[:16]}{args.suffix}"
    )

    profiler = SpanProfiler()
    with profile_spans(profiler), count_work() as work:
        with profiler.span("job"):
            execute_job(spec)

    counters_path = write_counts_json(f"{base}.counters.json", work.snapshot())
    chrome_path = profiler.write_chrome_trace(f"{base}.chrome.json")

    print(f"profile: {spec.kind} (spec hash {spec.spec_hash()[:16]}, "
          f"seed {args.seed})")
    print()
    print(profiler.format_tree())
    print()
    print(format_report(work.snapshot()), end="")
    print()
    print(f"counters json (byte-stable): {counters_path}")
    print(f"chrome trace (Perfetto/speedscope): {chrome_path}")
    return 0


def _cmd_diff(args: argparse.Namespace) -> int:
    a = load_counts_json(args.a)
    b = load_counts_json(args.b)
    rows = diff_counts(a, b)
    print(f"profile diff: {args.a} vs {args.b}")
    if not rows:
        print("work counters identical "
              f"({len(a)} counter(s))")
        return 0
    width = max(len(key) for key, _, _ in rows)
    for key, left, right in rows:
        print(f"DRIFT {key.ljust(width)}  {left} -> {right} "
              f"({right - left:+d})")
    print(f"profile diff: {len(rows)} counter(s) drifted", file=sys.stderr)
    return 1


def main(argv: Optional[List[str]] = None) -> int:
    """``repro profile`` entry point."""
    parser = argparse.ArgumentParser(
        prog="repro profile",
        description="Profile a registered job with hierarchical spans and "
        "deterministic work counters.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser(
        "run", help="run one job under spans + work counters"
    )
    run_p.add_argument(
        "kind", help="registered job kind (e.g. multihop_run, scenario_trace)"
    )
    run_p.add_argument(
        "--param", action="append", metavar="KEY=VALUE",
        help="job parameter (repeatable; values JSON-coerced)",
    )
    run_p.add_argument(
        "--seed", type=int, default=0, help="root seed (default 0)"
    )
    run_p.add_argument(
        "--out-dir", default=DEFAULT_OUT_DIR,
        help=f"artifact directory (default {DEFAULT_OUT_DIR})",
    )
    run_p.add_argument(
        "--suffix", default="",
        help="extra artifact-name suffix (e.g. '.run2' to keep two runs "
        "side by side for a determinism diff)",
    )
    run_p.set_defaults(func=_cmd_run)

    diff_p = sub.add_parser(
        "diff", help="compare two counters.json files (exit 1 on drift)"
    )
    diff_p.add_argument("a", help="first counters.json")
    diff_p.add_argument("b", help="second counters.json")
    diff_p.set_defaults(func=_cmd_diff)

    args = parser.parse_args(argv)
    return int(args.func(args))


if __name__ == "__main__":
    raise SystemExit(main())
