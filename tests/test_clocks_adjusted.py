"""Unit tests for the piecewise-linear adjusted clock."""

import pytest

from repro.clocks.adjusted import AdjustedClock, ClockSegment, MonotonicityError


def test_identity_by_default():
    clock = AdjustedClock()
    assert clock.read(123.0) == 123.0
    assert clock.k == 1.0 and clock.b == 0.0


def test_continuous_adjust_accepted():
    clock = AdjustedClock()
    # new segment through (100, 100): c = 1.0002 * t - 0.02
    clock.adjust(1.0002, 100.0 - 1.0002 * 100.0, at_local_time=100.0)
    assert clock.read(100.0) == pytest.approx(100.0)
    assert clock.read(200.0) == pytest.approx(1.0002 * 200.0 + clock.b)


def test_discontinuous_adjust_rejected():
    clock = AdjustedClock()
    with pytest.raises(MonotonicityError):
        clock.adjust(1.0, 5.0, at_local_time=100.0)  # jumps by +5


def test_nonpositive_slope_rejected():
    clock = AdjustedClock()
    for k in [0.0, -1.0, float("nan")]:
        with pytest.raises(MonotonicityError):
            clock.adjust(k, 0.0, at_local_time=0.0)


def test_adjust_before_previous_switch_rejected():
    clock = AdjustedClock()
    clock.adjust(1.0, 0.0, at_local_time=100.0)
    with pytest.raises(MonotonicityError):
        clock.adjust(1.0, 0.0, at_local_time=50.0)


def test_read_uses_segment_history():
    clock = AdjustedClock()
    clock.adjust(2e-3 + 1.0, 100.0 - (1.0 + 2e-3) * 100.0, at_local_time=100.0)
    # times before the switch use the original identity segment
    assert clock.read(50.0) == 50.0
    # times after use the new slope
    assert clock.read(150.0) == pytest.approx((1.0 + 2e-3) * 150.0 + clock.b)


def test_read_current_uses_only_latest_segment():
    clock = AdjustedClock()
    clock.adjust(1.001, -0.1, at_local_time=100.0)
    assert clock.read_current(50.0) == pytest.approx(1.001 * 50.0 - 0.1)


def test_slew_to_derives_intercept():
    clock = AdjustedClock()
    clock.slew_to(0.0, 1.0005, at_local_time=1_000.0)
    assert clock.read(1_000.0) == pytest.approx(1_000.0)
    assert clock.k == 1.0005


def test_monotonic_over_many_adjustments():
    clock = AdjustedClock()
    t = 0.0
    slope = 1.0
    for i in range(50):
        t += 100.0
        slope = 1.0 + ((-1) ** i) * 3e-4
        current = clock.read_current(t)
        clock.adjust(slope, current - slope * t, at_local_time=t)
    assert clock.is_monotonic(0.0, t + 100.0)
    assert clock.adjustments == 50


def test_segments_are_recorded():
    clock = AdjustedClock()
    clock.slew_to(0.0, 1.0001, 10.0)
    clock.slew_to(0.0, 0.9999, 20.0)
    segments = clock.segments
    assert len(segments) == 3
    assert isinstance(segments[0], ClockSegment)
    assert segments[1].start == 10.0
    assert segments[2].k == 0.9999


def test_is_monotonic_validates_range():
    clock = AdjustedClock()
    with pytest.raises(ValueError):
        clock.is_monotonic(10.0, 0.0)
