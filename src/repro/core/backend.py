"""Beacon-protection backends.

SSTSP's security pipeline makes three decisions per received beacon
(paper section 3.3): interval safety, disclosed-key validity, and delayed
MAC authentication of the previous interval's beacon. Two interchangeable
backends implement that pipeline:

* :class:`FullCryptoBackend` - real bytes: SHA-256-based hash chains and
  HMAC through :mod:`repro.crypto`. The default for small networks, unit
  tests and the crypto benchmarks.
* :class:`ModeledCryptoBackend` - the same decision procedure over
  structurally faithful placeholder material (position-labelled keys,
  recomputable tags) at a fraction of the cost. Large-N sweeps use this;
  ``tests/test_backend_equivalence.py`` locks the two backends to byte-
  for-byte identical verdict sequences on shared scenarios.

Either way the *protocol* code is identical: attackers cannot skip the
pipeline, they can only try to get through it.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.crypto.hashchain import DenseHashChain, HashChainRegistry
from repro.crypto.mutesla import IntervalSchedule, MuTeslaReceiver, MuTeslaSender, SecuredPacket
from repro.crypto.primitives import hash128_iter
from repro.mac.beacon import SecureBeaconFrame
from repro.obs.events import emit
from repro.phy.params import SSTSP_BEACON_BYTES


@dataclass(frozen=True)
class BeaconVerdict:
    """Outcome of processing one secure beacon at a receiver.

    Attributes
    ----------
    accepted:
        The beacon passed the interval and key checks and was buffered
        (it is *not* yet authenticated - that happens one interval later).
    reason:
        ``"ok"`` or why it was rejected: ``"unknown_sender"``,
        ``"unsafe_interval"``, ``"bad_key"``.
    authenticated_intervals:
        Interval indices of previously buffered beacons from this sender
        whose MACs verified under the newly disclosed key.
    """

    accepted: bool
    reason: str
    authenticated_intervals: Tuple[int, ...] = ()


class CryptoBackend(ABC):
    """Shared sender/receiver beacon-protection service for one network."""

    def __init__(self, schedule: IntervalSchedule) -> None:
        self.schedule = schedule

    @abstractmethod
    def register_node(self, node_id: int) -> None:
        """Create and publish the node's hash-chain commitment."""

    @abstractmethod
    def make_frame(
        self, node_id: int, interval: int, timestamp_us: float
    ) -> SecureBeaconFrame:
        """Sender side: build the secured beacon of ``interval``."""

    @abstractmethod
    def process(
        self, receiver_id: int, frame: SecureBeaconFrame, local_time_us: float
    ) -> BeaconVerdict:
        """Receiver side: run the verification pipeline on one beacon,
        where ``local_time_us`` is the receiver's adjusted clock."""


class FullCryptoBackend(CryptoBackend):
    """Real uTESLA over SHA-256 hash chains.

    Chains are committed (anchor published) for every node at registration
    in O(1) memory; the full chain is only materialised the first time a
    node actually transmits (only references and attackers ever do).

    With ``authenticated_anchors=True`` the anchor publication itself runs
    through the hash-only signature path of section 3.2: each node enrolls
    a Lamport one-time public key (the single trusted pre-distribution
    step) and *signs* its anchor; the registry verifies before accepting.
    The default keeps the paper's lighter assumption (a trusted registry).
    """

    def __init__(
        self,
        schedule: IntervalSchedule,
        rng: np.random.Generator,
        authenticated_anchors: bool = False,
    ) -> None:
        super().__init__(schedule)
        self._rng = rng
        self.registry = HashChainRegistry()
        self.authenticated_anchors = authenticated_anchors
        self._auth_registry = None
        if authenticated_anchors:
            from repro.crypto.lamport import AuthenticatedRegistry

            self._auth_registry = AuthenticatedRegistry()
        self._seeds: Dict[int, bytes] = {}
        self._senders: Dict[int, MuTeslaSender] = {}
        self._receivers: Dict[int, MuTeslaReceiver] = {}

    def register_node(self, node_id: int) -> None:
        """Create the node's chain commitment and publish its anchor."""
        if node_id in self._seeds:
            return
        seed = bytes(self._rng.integers(0, 256, size=16, dtype=np.uint8))
        anchor = hash128_iter(seed, self.schedule.length)
        self._seeds[node_id] = seed
        if self._auth_registry is not None:
            from repro.crypto.lamport import LamportSigner, _anchor_message

            signer = LamportSigner(self._rng)
            self._auth_registry.enroll(node_id, signer.public_key)
            signature = signer.sign(
                _anchor_message(node_id, anchor, self.schedule.length)
            )
            self._auth_registry.publish(
                node_id, anchor, self.schedule.length, signature
            )
        self.registry.publish(node_id, anchor, self.schedule.length)

    def make_frame(
        self, node_id: int, interval: int, timestamp_us: float
    ) -> SecureBeaconFrame:
        sender = self._senders.get(node_id)
        if sender is None:
            seed = self._seeds[node_id]
            chain = DenseHashChain(seed, self.schedule.length)
            sender = MuTeslaSender(node_id, chain, self.schedule)
            self._senders[node_id] = sender
        payload = _beacon_payload(node_id, timestamp_us)
        packet = sender.secure(payload, interval)
        return SecureBeaconFrame(
            sender=node_id,
            timestamp_us=timestamp_us,
            interval=interval,
            mac_tag=packet.mac_tag,
            disclosed_key=packet.disclosed_key,
            size_bytes=SSTSP_BEACON_BYTES,
        )

    def process(
        self, receiver_id: int, frame: SecureBeaconFrame, local_time_us: float
    ) -> BeaconVerdict:
        receiver = self._receivers.get(receiver_id)
        if receiver is None:
            receiver = MuTeslaReceiver(self.schedule, owner=receiver_id)
            self._receivers[receiver_id] = receiver
        if not receiver.knows_sender(frame.sender):
            published = self.registry.lookup(frame.sender)
            if published is None:
                return BeaconVerdict(False, "unknown_sender")
            receiver.register_sender(frame.sender, *published)
        state = receiver.sender_stats(frame.sender)
        before = (state.rejected_unsafe_interval, state.rejected_bad_key)
        packet = SecuredPacket(
            payload=_beacon_payload(frame.sender, frame.timestamp_us),
            interval=frame.interval,
            mac_tag=frame.mac_tag,
            disclosed_key=frame.disclosed_key,
        )
        released = receiver.receive(frame.sender, packet, local_time_us)
        after = (state.rejected_unsafe_interval, state.rejected_bad_key)
        if after[0] > before[0]:
            return BeaconVerdict(False, "unsafe_interval")
        if after[1] > before[1]:
            return BeaconVerdict(False, "bad_key")
        return BeaconVerdict(
            True, "ok", tuple(msg.interval for msg in released)
        )


class ModeledCryptoBackend(CryptoBackend):
    """Decision-equivalent stand-in for :class:`FullCryptoBackend`.

    Chain element at position ``p`` of node ``i`` is the *label*
    ``b"K|i|p"``; a tag is the recomputable label over ``(sender,
    timestamp, interval)``. Holders of a registered identity can produce
    valid material, outsiders cannot (their frames carry unrelated bytes),
    so every branch of the pipeline - unknown sender, stale interval, bad
    key, bad MAC, multi-interval release - behaves exactly as with real
    crypto, without hashing.
    """

    MAX_PENDING = MuTeslaReceiver.MAX_PENDING

    def __init__(self, schedule: IntervalSchedule) -> None:
        super().__init__(schedule)
        self._registered: set = set()
        # (receiver, sender) -> {interval: frame} pending authentication.
        self._pending: Dict[Tuple[int, int], Dict[int, SecureBeaconFrame]] = {}

    def register_node(self, node_id: int) -> None:
        self._registered.add(node_id)

    @staticmethod
    def _key_label(node_id: int, position: int) -> bytes:
        return b"K|%d|%d" % (node_id, position)

    @staticmethod
    def _tag_label(node_id: int, interval: int, timestamp_us: float) -> bytes:
        return b"T|%d|%d|%.6f" % (node_id, interval, timestamp_us)

    def make_frame(
        self, node_id: int, interval: int, timestamp_us: float
    ) -> SecureBeaconFrame:
        if node_id not in self._registered:
            raise ValueError(f"node {node_id} has no registered chain")
        n = self.schedule.length
        return SecureBeaconFrame(
            sender=node_id,
            timestamp_us=timestamp_us,
            interval=interval,
            mac_tag=self._tag_label(node_id, interval, timestamp_us),
            disclosed_key=self._key_label(node_id, n - interval + 1),
            size_bytes=SSTSP_BEACON_BYTES,
        )

    def process(
        self, receiver_id: int, frame: SecureBeaconFrame, local_time_us: float
    ) -> BeaconVerdict:
        if frame.sender not in self._registered:
            return BeaconVerdict(False, "unknown_sender")
        j = frame.interval
        # Same emission points as MuTeslaReceiver.receive so a traced run
        # reads identically under either backend.
        if j != self.schedule.interval_of(local_time_us) or not self.schedule.contains(j):
            emit(
                "mutesla_reject",
                t_us=local_time_us,
                node=receiver_id,
                sender=frame.sender,
                interval=j,
                reason="unsafe_interval",
            )
            return BeaconVerdict(False, "unsafe_interval")
        n = self.schedule.length
        if frame.disclosed_key != self._key_label(frame.sender, n - j + 1):
            emit(
                "mutesla_reject",
                t_us=local_time_us,
                node=receiver_id,
                sender=frame.sender,
                interval=j,
                reason="bad_key",
            )
            return BeaconVerdict(False, "bad_key")
        pending = self._pending.setdefault((receiver_id, frame.sender), {})
        released: List[int] = []
        for interval in sorted(i for i in pending if i < j):
            buffered = pending.pop(interval)
            expected = self._tag_label(
                buffered.sender, buffered.interval, buffered.timestamp_us
            )
            if buffered.mac_tag == expected:
                released.append(interval)
                emit(
                    "mutesla_auth",
                    t_us=local_time_us,
                    node=receiver_id,
                    sender=frame.sender,
                    interval=interval,
                )
            else:
                emit(
                    "mutesla_reject",
                    t_us=local_time_us,
                    node=receiver_id,
                    sender=frame.sender,
                    interval=interval,
                    reason="bad_mac",
                )
        pending[j] = frame
        emit(
            "mutesla_defer",
            t_us=local_time_us,
            node=receiver_id,
            sender=frame.sender,
            interval=j,
        )
        while len(pending) > self.MAX_PENDING:
            pending.pop(min(pending))
        return BeaconVerdict(True, "ok", tuple(released))


def _beacon_payload(sender: int, timestamp_us: float) -> bytes:
    """Canonical byte encoding of the beacon body covered by the MAC."""
    return b"B|%d|%.6f" % (sender, timestamp_us)
