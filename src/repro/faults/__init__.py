"""Declarative fault injection: specs, plans and the runner-side injector.

See :mod:`repro.faults.spec` for the fault vocabulary and
:mod:`repro.faults.injector` for how plans are applied to a live network.
The chaos soak harness (:mod:`repro.experiments.chaos`) generates
randomized plans and checks recovery invariants after each.
"""

from repro.faults.injector import FaultInjector
from repro.faults.spec import (
    CHANNEL_FAULT_KINDS,
    FAULT_KINDS,
    NODE_FAULT_KINDS,
    FaultPlan,
    FaultSpec,
    random_plan,
)

__all__ = [
    "CHANNEL_FAULT_KINDS",
    "FAULT_KINDS",
    "NODE_FAULT_KINDS",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "random_plan",
]
