"""The multi-hop SSTSP simulation.

One designated *root* (the paper's "first node arriving in the network"
that publishes ``T_0``) beacons at every BP exactly like the single-hop
reference node. Every synchronized node at hop ``h`` relays inside the
``h``-th segment of the beacon window (with a small random backoff inside
the segment, so same-hop relayers decorrelate), letting the time wave
cross the whole diameter within one BP. Reception is *spatial*: a station
hears exactly its graph neighbours, overlapping transmissions from two
audible neighbours collide at that receiver only.

Receivers run the unchanged SSTSP pipeline against their best upstream
(lowest hop, then earliest): per-relayer uTESLA material (modeled backend
semantics), the guard time, and the (k, b) slewing of equations (2)-(5) -
with one generalisation: the convergence target extrapolates the
*upstream's* timestamp grid (``ts1 + (j + m - j1) * BP``) instead of the
global ``T^{j+m}`` grid, because a relay's emission instant includes its
hop segment and backoff. For the root's direct children the two coincide.

If the root leaves, its orphaned hop-1 children run the single-hop
election among themselves; the winner becomes the new root.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.analysis.metrics import SyncTrace, TraceRecorder
from repro.clocks.adjusted import AdjustedClock, MonotonicityError
from repro.clocks.population import ClockPopulation
from repro.core.adjustment import (
    AdjustmentSample,
    DegenerateSamplesError,
    solve_adjustment,
)
from repro.multihop.topology import Topology
from repro.sim.rng import RngRegistry
from repro.sim.units import S


@dataclass(frozen=True)
class MultiHopSpec:
    """Scenario description for one multi-hop run."""

    topology: Topology
    seed: int = 1
    duration_s: float = 60.0
    beacon_period_us: float = 0.1 * S
    drift_ppm: float = 100.0
    initial_offset_us: float = 0.0
    root: int = 0
    #: Beacon-window slots reserved per hop level. Must exceed the beacon
    #: airtime (7 slots) or adjacent hop segments overlap on the air and
    #: collide at every station hearing both hops.
    hop_stride_slots: int = 16
    slot_time_us: float = 9.0
    #: Airtime of one secure beacon (7 slots, as in single-hop SSTSP).
    beacon_airtime_slots: int = 7
    propagation_delay_us: float = 1.0
    timestamp_jitter_us: float = 2.0
    packet_error_rate: float = 1e-4
    #: Probability a relay-eligible node transmits in a given BP. Dense
    #: neighbourhoods benefit from thinning (fewer same-segment collisions).
    relay_probability: float = 1.0
    #: Multi-hop default is deeper filtering than single-hop (m = 4): each
    #: hop tracks a *tracking* clock, so the estimator's noise gain
    #: compounds per hop; small m amplifies it into instability.
    m: int = 4
    l: int = 2
    #: Guard time grows with the sender's hop: per-hop error accumulates
    #: roughly linearly, so a flat guard would cut off deep hops.
    guard_fine_us: float = 500.0
    guard_per_hop_us: float = 100.0
    #: After this many silent periods a node discards its synchronization
    #: state entirely and re-acquires from the first beacon it hears (the
    #: multi-hop analogue of the recovery extension).
    resync_after_periods: int = 10
    k_clamp: float = 5e-3

    def __post_init__(self) -> None:
        if not 0 <= self.root < self.topology.n:
            raise ValueError("root must be a topology node")
        if not 0.0 < self.relay_probability <= 1.0:
            raise ValueError("relay_probability must be in (0, 1]")
        if self.hop_stride_slots < 1:
            raise ValueError("hop_stride_slots must be >= 1")
        if self.hop_stride_slots <= self.beacon_airtime_slots:
            raise ValueError(
                "hop_stride_slots must exceed beacon_airtime_slots: adjacent "
                "hop segments would overlap on the air"
            )

    @property
    def periods(self) -> int:
        return int(round(self.duration_s * S / self.beacon_period_us))


@dataclass
class _NodeState:
    """Per-station protocol state (the multi-hop analogue of SstspProtocol)."""

    clock: AdjustedClock
    hop: Optional[int] = None  # None = not yet synchronized; 0 = root
    upstream: Optional[int] = None
    silent: int = 0
    adjustments: int = 0
    samples: List[AdjustmentSample] = field(default_factory=list)
    pending: Optional[Tuple[int, float, float]] = None  # (interval, hw, est)

    def reset_sync(self) -> None:
        self.hop = None
        self.upstream = None
        self.samples.clear()
        self.pending = None
        self.silent = 0


@dataclass
class _Transmission:
    """One on-air relay beacon.

    ``timestamp`` is the sender's *normalized* time reference: its
    adjusted-clock estimate of the period start ``T^j`` (its actual
    emission instant is ``T^j + delay_us`` on its own clock, where
    ``delay_us`` - hop segment plus backoff - is deterministic schedule
    information carried in the beacon). Receivers subtract ``delay_us``
    from the reception time too, so sample pairs sit on a clean BP grid
    and per-period backoff never pollutes rate estimation - without this
    normalisation the backoff jitter (~3 slots) compounds per hop and
    blows up the deep-hop error.
    """

    sender: int
    hop: int
    interval: int
    tx_true: float
    timestamp: float
    delay_us: float


@dataclass
class MultiHopResult:
    """Outcome of one multi-hop run."""

    trace: SyncTrace
    per_hop_error_us: Dict[int, float]
    hop_of: Dict[int, int]
    root: int
    root_changes: int
    beacons_sent: int
    collisions_at_receivers: int

    def max_hop(self) -> int:
        """Deepest hop distance present in the final tree."""
        return max(self.hop_of.values()) if self.hop_of else 0


class MultiHopRunner:
    """Drives one multi-hop SSTSP network."""

    def __init__(self, spec: MultiHopSpec) -> None:
        self.spec = spec
        self.n = spec.topology.n
        self.rngs = RngRegistry(spec.seed)
        population = ClockPopulation.sample(
            self.n,
            self.rngs.get("clocks"),
            drift_ppm=spec.drift_ppm,
            initial_offset_us=spec.initial_offset_us,
        )
        self.rates = population.rates
        self.offsets = population.offsets
        self.present = np.ones(self.n, dtype=bool)
        self.nodes = [
            _NodeState(clock=AdjustedClock(1.0, 0.0)) for _ in range(self.n)
        ]
        self.root = spec.root
        self.nodes[self.root].hop = 0
        self.root_changes = 0
        self.beacons_sent = 0
        self.collisions = 0
        self._slot_rng = self.rngs.get("slots")
        self._chan_rng = self.rngs.get("channel")
        self._recorder = TraceRecorder()
        self._per_hop_errors: Dict[int, List[float]] = {}
        self._relay_phase: Dict[Tuple[int, int], int] = {}
        #: scheduled departures: period -> list of nodes (tests/examples use
        #: this to exercise root failover)
        self.leave_at: Dict[int, List[int]] = {}
        self.return_at: Dict[int, List[int]] = {}

    # ------------------------------------------------------------------
    # Clock plumbing
    # ------------------------------------------------------------------

    def _hw_at(self, node: int, true_time: float) -> float:
        return self.rates[node] * true_time + self.offsets[node]

    def _true_at_adjusted(self, node: int, adjusted_value: float) -> float:
        state = self.nodes[node]
        hw = (adjusted_value - state.clock.b) / state.clock.k
        return (hw - self.offsets[node]) / self.rates[node]

    def _adjusted_at(self, node: int, true_time: float) -> float:
        return self.nodes[node].clock.read_current(self._hw_at(node, true_time))

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------

    def run(self) -> MultiHopResult:
        """Simulate all periods; returns the result bundle."""
        spec = self.spec
        for period in range(1, spec.periods + 1):
            self._apply_churn(period)
            transmissions = self._collect_transmissions(period)
            receptions = self._resolve_receptions(transmissions)
            accepted = self._process_receptions(period, receptions)
            self._end_period(period, accepted)
            self._sample_metrics(period)
        per_hop = {
            hop: float(np.median(values))
            for hop, values in sorted(self._per_hop_errors.items())
        }
        hop_of = self.spec.topology.hop_distances(self.root)
        return MultiHopResult(
            trace=self._recorder.finalize(),
            per_hop_error_us=per_hop,
            hop_of=hop_of,
            root=self.root,
            root_changes=self.root_changes,
            beacons_sent=self.beacons_sent,
            collisions_at_receivers=self.collisions,
        )

    # ------------------------------------------------------------------
    # Phases of one period
    # ------------------------------------------------------------------

    def _apply_churn(self, period: int) -> None:
        for node in self.leave_at.get(period, []):
            if self.present[node]:
                self.present[node] = False
                if node == self.root:
                    self.root = -1  # orphaned; hop-1 children will elect
        for node in self.return_at.get(period, []):
            if not self.present[node]:
                self.present[node] = True
                self.nodes[node].reset_sync()

    def _relay_turn(self, node: int, period: int) -> bool:
        """Relay scheduling with deterministic same-hop rotation.

        With every same-hop station relaying every BP, dense neighbourhoods
        collide persistently; with *random* thinning, receivers keep
        flipping upstreams (each flip resets their sample history). A
        deterministic rotation - each station relays every K-th period at
        a fixed (randomly drawn, then frozen) phase - cuts collisions while
        keeping each upstream's beacons periodic, so downstream sample
        pairs stay within the pair-gap limit.

        The rotation counts same-hop stations over the *two-hop*
        neighbourhood: hidden terminals (same-hop stations out of carrier-
        sense range but sharing a receiver) are exactly the pairs that
        carrier sensing cannot separate.
        """
        spec = self.spec
        if spec.relay_probability < 1.0:
            return self._slot_rng.random() < spec.relay_probability
        state = self.nodes[node]
        same_hop = sum(
            1
            for other in spec.topology.two_hop_neighbors(node)
            if self.present[other] and self.nodes[other].hop == state.hop
        )
        if same_hop == 0:
            return True
        cycle = min(4, 1 + same_hop)
        return period % cycle == self._relay_phase_for(node, cycle)

    def _relay_phase_for(self, node: int, cycle: int) -> int:
        """Greedy phase coloring over the same-hop/2-hop conflict graph.

        Two hidden same-hop stations with *equal* fixed phases would
        collide forever at their common receivers; purely random per-period
        draws starve dense neighbourhoods instead. Greedily picking the
        phase least used by already-colored conflicting stations keeps
        relaying periodic (downstream sample pairs stay fresh) while
        resolving the permanent-collision cases. Phases are re-colored
        when a station's hop (and thus its conflict set) changes.
        """
        state = self.nodes[node]
        key = (node, state.hop, cycle)
        phase = self._relay_phase.get(key)
        if phase is not None:
            return phase
        used = [0] * cycle
        for other in self.spec.topology.two_hop_neighbors(node):
            other_state = self.nodes[other]
            if other_state.hop != state.hop:
                continue
            other_phase = self._relay_phase.get((other, other_state.hop, cycle))
            if other_phase is not None:
                used[other_phase] += 1
        least = min(used)
        candidates = [p for p, count in enumerate(used) if count == least]
        phase = candidates[node % len(candidates)]
        self._relay_phase[key] = phase
        return phase

    def _backoff_range(self) -> int:
        """Backoff slots usable inside a hop segment without bleeding the
        transmission into the next segment."""
        return max(
            1, self.spec.hop_stride_slots - self.spec.beacon_airtime_slots
        )

    def _collect_transmissions(self, period: int) -> List[_Transmission]:
        spec = self.spec
        nominal = period * spec.beacon_period_us
        out: List[_Transmission] = []
        orphan_election = self.root < 0 or not self.present[self.root]
        for i in range(self.n):
            if not self.present[i]:
                continue
            state = self.nodes[i]
            if i == self.root:
                delay = 0.0
            elif orphan_election and state.hop == 1 and state.silent >= spec.l:
                # orphaned children of a departed root: contend in segment 0
                slot = int(self._slot_rng.integers(0, self._backoff_range()))
                delay = slot * spec.slot_time_us
            elif (
                state.hop is not None
                and state.hop >= 1
                and state.adjustments >= 1
                and self._relay_turn(i, period)
            ):
                slot = int(self._slot_rng.integers(0, self._backoff_range()))
                delay = (
                    state.hop * spec.hop_stride_slots + slot
                ) * spec.slot_time_us
            else:
                continue
            tx_true = self._true_at_adjusted(i, nominal + delay)
            # normalized reference: the sender's clock reads exactly
            # nominal + delay at tx, so its T^j estimate is ``nominal``
            timestamp = nominal
            hop = 0 if i == self.root else (state.hop if state.hop is not None else 0)
            out.append(_Transmission(i, hop, period, tx_true, timestamp, delay))
        return self._carrier_sense(out)

    def _carrier_sense(
        self, candidates: List[_Transmission]
    ) -> List[_Transmission]:
        """802.11 deferral/cancellation: a relay whose backoff expires while
        an *audible* neighbour's transmission is on the air cancels (it
        just received that beacon). Mutually hidden transmitters still
        collide downstream - that is physics, handled at the receivers."""
        airtime = self.spec.beacon_airtime_slots * self.spec.slot_time_us
        candidates.sort(key=lambda tx: tx.tx_true)
        kept: List[_Transmission] = []
        busy_until: Dict[int, float] = {}
        for tx in candidates:
            if busy_until.get(tx.sender, -math.inf) > tx.tx_true:
                continue  # medium sensed busy: cancel this relay
            kept.append(tx)
            self.beacons_sent += 1
            end = tx.tx_true + airtime
            for neighbor in self.spec.topology.neighbors(tx.sender):
                if end > busy_until.get(neighbor, -math.inf):
                    busy_until[neighbor] = end
        return kept

    def _resolve_receptions(
        self, transmissions: List[_Transmission]
    ) -> Dict[int, List[_Transmission]]:
        """Per-receiver spatial reception: a transmission is decoded iff no
        other *audible* transmission overlaps it in time."""
        spec = self.spec
        airtime = spec.beacon_airtime_slots * spec.slot_time_us
        by_sender: Dict[int, _Transmission] = {tx.sender: tx for tx in transmissions}
        receptions: Dict[int, List[_Transmission]] = {}
        per = spec.packet_error_rate
        for receiver in range(self.n):
            if not self.present[receiver]:
                continue
            audible = [
                by_sender[s]
                for s in self.spec.topology.neighbors(receiver)
                if s in by_sender and self.present[s]
            ]
            if not audible:
                continue
            audible.sort(key=lambda tx: tx.tx_true)
            decoded: List[_Transmission] = []
            index = 0
            while index < len(audible):
                group = [audible[index]]
                end = audible[index].tx_true + airtime
                index += 1
                while index < len(audible) and audible[index].tx_true < end:
                    group.append(audible[index])
                    end = max(end, audible[index].tx_true + airtime)
                    index += 1
                if len(group) == 1:
                    if per <= 0.0 or self._chan_rng.random() >= per:
                        decoded.append(group[0])
                else:
                    self.collisions += 1
            if decoded:
                receptions[receiver] = decoded
        return receptions

    def _process_receptions(
        self, period: int, receptions: Dict[int, List[_Transmission]]
    ) -> set:
        """Returns the set of receivers that *accepted* a beacon (decoded,
        interval-fresh and guard-passing) - the input to silence tracking."""
        spec = self.spec
        accepted: set = set()
        latency = (
            spec.beacon_airtime_slots * spec.slot_time_us
            + spec.propagation_delay_us
        )
        for receiver, decoded in receptions.items():
            if receiver == self.root:
                accepted.add(receiver)
                continue
            state = self.nodes[receiver]
            # Upstream selection: stick with the current upstream whenever
            # its beacon decoded (switching resets the sample history);
            # switch only to a strictly better hop, or when the current
            # upstream went quiet.
            decoded.sort(key=lambda tx: (tx.hop, tx.tx_true))
            best = decoded[0]
            current = next(
                (tx for tx in decoded if tx.sender == state.upstream), None
            )
            if current is not None and best.hop >= current.hop:
                chosen = current
            elif current is not None and best.hop < current.hop:
                chosen = best  # strictly better hop: re-hang
            elif state.upstream is None or state.silent >= 2 * self.spec.l:
                chosen = best
            else:
                continue  # upstream not heard this period; stay patient
            arrival = chosen.tx_true + latency
            jitter = float(
                self._chan_rng.uniform(
                    -spec.timestamp_jitter_us, spec.timestamp_jitter_us
                )
            )
            # normalise out the sender's deterministic schedule delay (see
            # _Transmission): both sides of the sample sit on the BP grid
            hw = self._hw_at(receiver, arrival) - chosen.delay_us
            est = chosen.timestamp + latency + jitter
            local = state.clock.read_current(hw)
            if state.hop is None:
                # first contact: loose initialisation (the coarse phase of
                # a joiner, collapsed to one sample for founding nodes that
                # are loosely synchronized already)
                state.clock = AdjustedClock(
                    state.clock.k, state.clock.b + (est - local)
                )
                state.hop = chosen.hop + 1
                state.upstream = chosen.sender
                state.silent = 0
                accepted.add(receiver)
                continue
            guard = spec.guard_fine_us + spec.guard_per_hop_us * (chosen.hop + 1)
            if abs(est - local) > guard:
                continue  # guard time: replayed/delayed/forged or far drift
            silent_before = state.silent
            state.silent = 0
            accepted.add(receiver)
            better_hop = chosen.hop + 1 < state.hop
            if chosen.sender != state.upstream:
                if (
                    better_hop
                    or state.upstream is None
                    or silent_before >= 2 * spec.l
                ):
                    state.upstream = chosen.sender
                    state.hop = chosen.hop + 1
                    state.samples.clear()
                    state.pending = None
                else:
                    continue  # stick with the current upstream
            else:
                state.hop = chosen.hop + 1
            # uTESLA delayed authentication: last period's pending
            # observation from this upstream becomes a sample now
            if state.pending is not None and state.pending[0] < period:
                interval, p_hw, p_est = state.pending
                state.samples.append(AdjustmentSample(interval, p_hw, p_est))
                del state.samples[:-2]
            state.pending = (period, hw, est)
            self._try_adjust(receiver, period, hw)
        return accepted

    def _try_adjust(self, receiver: int, period: int, hw_now: float) -> None:
        spec = self.spec
        state = self.nodes[receiver]
        if len(state.samples) < 2:
            return
        newest, older = state.samples[-1], state.samples[-2]
        # freshness limits sized to the relay rotation: an upstream on a
        # cycle-4 rotation yields samples up to 4 periods apart
        if period - newest.interval > 6 or newest.interval - older.interval > 9:
            return
        # generalised equation (5): extrapolate the upstream's own grid
        target = newest.ref_timestamp + (
            period + spec.m - newest.interval
        ) * spec.beacon_period_us
        try:
            k, b = solve_adjustment(
                state.clock.k, state.clock.b, hw_now, newest, older, target
            )
        except DegenerateSamplesError:
            return
        if abs(k - 1.0) > spec.k_clamp:
            return
        try:
            state.clock.adjust(k, b, hw_now)
        except MonotonicityError:
            return
        state.adjustments += 1

    def _end_period(self, period: int, accepted: set) -> None:
        spec = self.spec
        orphan_election = self.root < 0
        for i in range(self.n):
            if not self.present[i] or i == self.root:
                continue
            state = self.nodes[i]
            if i not in accepted:
                state.silent += 1
                if state.silent > 4 * spec.l and state.upstream is not None:
                    # upstream lost: detach and re-acquire from any beacon
                    state.samples.clear()
                    state.pending = None
                    state.upstream = None
                if state.silent > spec.resync_after_periods and state.hop is not None:
                    # nothing acceptable heard for a long stretch: this
                    # clock has diverged beyond the guard - start over
                    state.reset_sync()
        if orphan_election:
            # a hop-1 orphan that transmitted and heard nothing becomes root
            candidates = [
                i
                for i in range(self.n)
                if self.present[i]
                and self.nodes[i].hop == 1
                and i not in accepted
            ]
            # the transmission set for this period is gone; approximate the
            # single-winner rule with the earliest-slot draw equivalent:
            if candidates:
                winner = candidates[0]
                self.root = winner
                state = self.nodes[winner]
                state.hop = 0
                state.upstream = None
                self.root_changes += 1
                # the new root is the timebase: clamp away any transient
                # slewing slope (same rationale as the single-hop
                # reference_pace_clamp), continuously at the current time
                hw_now = self._hw_at(winner, (period + 1) * spec.beacon_period_us)
                k_old = state.clock.k
                k_new = min(max(k_old, 1.0 - 3e-4), 1.0 + 3e-4)
                if k_new != k_old:
                    state.clock.slew_to(0.0, k_new, at_local_time=hw_now)

    def _sample_metrics(self, period: int) -> None:
        spec = self.spec
        sample_time = (period + 0.9) * spec.beacon_period_us
        values = []
        present_synced = []
        for i in range(self.n):
            if self.present[i] and self.nodes[i].hop is not None:
                values.append(self._adjusted_at(i, sample_time))
                present_synced.append(i)
        self._recorder.record(
            sample_time, values, self.root if self.root >= 0 else -1
        )
        # per-hop error vs the root (second half of the run only)
        if self.root >= 0 and period > spec.periods // 2:
            root_value = self._adjusted_at(self.root, sample_time)
            hops = self.spec.topology.hop_distances(self.root)
            for i, value in zip(present_synced, values):
                hop = hops.get(i)
                if hop is None or hop == 0:
                    continue
                self._per_hop_errors.setdefault(hop, []).append(
                    abs(value - root_value)
                )


def run_multihop(spec: MultiHopSpec) -> MultiHopResult:
    """Convenience wrapper."""
    return MultiHopRunner(spec).run()
