"""Section 3.4 overhead accounting, measured.

Three claims are checked against implementation-measured numbers rather
than restated:

* beacons grow 56 -> 92 bytes and 4 -> 7 slot times, with the beacon
  *count* unchanged (one per BP either way);
* a hash chain can be served from O(log2 n) resident elements at
  O(log2 n) amortised hash work (the fractal traversal of [6]);
* receivers buffer at most 2 BPs of beacons (~300-500 bytes).
"""

from __future__ import annotations

import argparse

from repro.analysis.overhead import (
    beacon_overhead,
    chain_storage_report,
    fractal_storage_bound,
    receiver_buffer_bytes,
    traffic_overhead,
)
from repro.crypto.primitives import HASH_BYTES
from repro.experiments.report import format_table
from repro.phy.params import OFDM_54MBPS


def run(chain_length: int = 10_000, samples: int = 256):
    """Collect all measured overhead numbers."""
    return {
        "tsf": beacon_overhead(secure=False, phy=OFDM_54MBPS),
        "sstsp": beacon_overhead(secure=True, phy=OFDM_54MBPS),
        "traffic_1000s": traffic_overhead(duration_s=1000.0),
        "chain": chain_storage_report(chain_length, samples=samples),
        "chain_length": chain_length,
        "chain_samples": samples,
        "buffer_bytes": receiver_buffer_bytes(2),
    }


def main(argv=None) -> None:
    """CLI entry point; prints the reproduced rows/series."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--chain-length", type=int, default=10_000)
    parser.add_argument("--quick", action="store_true",
                        help="shorter chain (1024) for smoke runs")
    args = parser.parse_args(argv)
    chain_length = 1024 if args.quick else args.chain_length

    data = run(chain_length=chain_length, samples=min(256, chain_length))
    print("=== Section 3.4: traffic & storage overhead ===")
    print()
    rows = []
    for name in ("tsf", "sstsp"):
        o = data[name]
        rows.append(
            (
                name.upper(),
                o.beacon_bytes,
                f"{o.airtime_us_per_beacon:.0f} us",
                f"{o.bytes_per_second:.0f} B/s",
                f"{o.airtime_fraction * 100:.3f}%",
            )
        )
    print(
        format_table(
            ["protocol", "beacon bytes", "airtime", "bytes/s", "airtime share"],
            rows,
            title="Beacon overhead (paper: 56 -> 92 bytes, same beacon count)",
        )
    )
    print()
    traffic = data["traffic_1000s"]
    print(f"1000 s of beaconing: {traffic['beacons']:.0f} beacons either way; "
          f"bytes ratio SSTSP/TSF = {traffic['ratio']:.3f}")
    print()
    chain_rows = [
        (
            row.strategy,
            row.resident_elements,
            row.resident_bytes,
            row.hash_ops_for_traversal,
        )
        for row in data["chain"]
    ]
    print(
        format_table(
            ["strategy", "resident elements", "bytes", "hash ops "
             f"({data['chain_samples']} disclosures)"],
            chain_rows,
            title=f"Hash-chain storage, n = {data['chain_length']} "
            f"(paper/[6]: log2(n) = {fractal_storage_bound(data['chain_length'])} "
            "elements suffice)",
        )
    )
    print()
    print(f"receiver beacon buffer for 2 BPs: {data['buffer_bytes']} bytes "
          "(paper: 300-500 bytes); one chain element/tag is "
          f"{HASH_BYTES} bytes")


if __name__ == "__main__":
    main()
