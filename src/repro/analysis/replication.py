"""Multi-replica experiment statistics.

Simulation results are random variables; any number quoted from a single
seed is an anecdote. This module runs a metric across independent
replicas (via :meth:`~repro.sim.rng.RngRegistry`-style seed derivation)
and summarises it with a mean, spread and a t-based 95% confidence
interval, plus a paired comparison helper for A-vs-B protocol claims.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Optional, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class ReplicaSummary:
    """Summary of one scalar metric over independent replicas."""

    values: Tuple[float, ...]
    mean: float
    std: float
    ci95_half_width: float

    @property
    def n(self) -> int:
        return len(self.values)

    @property
    def ci95(self) -> Tuple[float, float]:
        return (self.mean - self.ci95_half_width, self.mean + self.ci95_half_width)

    def __str__(self) -> str:
        return f"{self.mean:.3g} ± {self.ci95_half_width:.2g} (n={self.n})"


#: Two-sided 97.5% Student-t quantiles by degrees of freedom (1..30);
#: beyond 30 the normal 1.96 is close enough. Avoids a hard scipy
#: dependency on the runtime path.
_T975 = [
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
    2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
    2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
]


def t975(df: int) -> float:
    """97.5% t quantile for ``df`` degrees of freedom."""
    if df < 1:
        raise ValueError("df must be >= 1")
    return _T975[df - 1] if df <= len(_T975) else 1.96


def summarize(values: Sequence[Optional[float]]) -> ReplicaSummary:
    """Mean / sample std / t-based 95% CI half-width of ``values``.

    ``None`` entries and NaN gaps — quarantined sweep cells (PR 6) leave
    them in value lists — are dropped rather than raised on: the summary
    covers the replicas that actually produced a measurement. Raises
    only when nothing survives.
    """
    arr = np.asarray(
        [v for v in values if v is not None], dtype=np.float64
    )
    arr = arr[np.isfinite(arr)]
    if arr.size == 0:
        raise ValueError("need at least one replica")
    mean = float(arr.mean())
    if arr.size == 1:
        return ReplicaSummary(tuple(arr), mean, 0.0, math.inf)
    std = float(arr.std(ddof=1))
    half = t975(arr.size - 1) * std / math.sqrt(arr.size)
    return ReplicaSummary(tuple(arr), mean, std, half)


def replicate(
    metric: Callable[[int], float],
    replicas: int = 5,
    base_seed: int = 1,
    seed_stride: int = 1000,
) -> ReplicaSummary:
    """Evaluate ``metric(seed)`` over ``replicas`` derived seeds."""
    if replicas < 1:
        raise ValueError("replicas must be >= 1")
    seeds = [base_seed + seed_stride * r for r in range(replicas)]
    return summarize([float(metric(seed)) for seed in seeds])


@dataclass(frozen=True)
class PairedComparison:
    """Paired A-vs-B comparison over common seeds."""

    a: ReplicaSummary
    b: ReplicaSummary
    diff: ReplicaSummary  # per-seed a - b

    @property
    def a_smaller_significant(self) -> bool:
        """True when A < B with the paired 95% CI excluding zero."""
        low, high = self.diff.ci95
        return high < 0.0

    @property
    def ratio(self) -> float:
        """Mean(B) / mean(A): how many times larger B is."""
        return self.b.mean / self.a.mean if self.a.mean else math.inf


def compare(
    metric_a: Callable[[int], float],
    metric_b: Callable[[int], float],
    replicas: int = 5,
    base_seed: int = 1,
    seed_stride: int = 1000,
) -> PairedComparison:
    """Paired comparison: both metrics evaluated on identical seeds."""
    seeds = [base_seed + seed_stride * r for r in range(replicas)]
    values_a = [float(metric_a(seed)) for seed in seeds]
    values_b = [float(metric_b(seed)) for seed in seeds]
    diffs = [a - b for a, b in zip(values_a, values_b)]
    return PairedComparison(
        a=summarize(values_a), b=summarize(values_b), diff=summarize(diffs)
    )
