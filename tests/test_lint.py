"""reprolint: fixture-driven tests for every rule, pragma and the CLI.

Each rule gets at least one positive case (the rule fires), one negative
case (idiomatic code does not), and one pragma-suppression case; the
engine tests cover allowlist scoping, baselines, exit codes, and — the
gate this PR installs — that the real ``src/repro`` tree lints clean.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

import pytest

import repro
from repro.lint import (
    RULES,
    Diagnostic,
    LintConfig,
    apply_baseline,
    lint_file,
    lint_paths,
    load_baseline,
    package_relative,
    write_baseline,
)
from repro.lint.cli import main as lint_main

SRC_REPRO = Path(repro.__file__).parent


def put(tmp_path: Path, rel: str, source: str) -> Path:
    """Write a fixture module at ``tmp_path/rel`` and return its path."""
    path = tmp_path / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    return path


def codes(diags) -> list:
    """The finding codes, in report order."""
    return [d.code for d in diags]


class TestD001UnseededRandomness:
    def test_stdlib_random_use_fires(self, tmp_path):
        f = put(
            tmp_path,
            "repro/network/mod.py",
            """
            import random

            def jitter(xs):
                random.shuffle(xs)
                return random.random()
            """,
        )
        assert codes(lint_file(f)) == ["D001", "D001"]

    def test_from_import_use_fires(self, tmp_path):
        f = put(
            tmp_path,
            "repro/network/mod.py",
            """
            from random import randint

            def draw():
                return randint(0, 7)
            """,
        )
        assert codes(lint_file(f)) == ["D001"]

    def test_numpy_module_state_fires(self, tmp_path):
        f = put(
            tmp_path,
            "repro/network/mod.py",
            """
            import numpy as np

            def draw():
                np.random.seed(3)
                return np.random.random()
            """,
        )
        assert codes(lint_file(f)) == ["D001", "D001"]

    def test_seeded_generator_is_clean(self, tmp_path):
        # Clean for D001 (no module-global state); placement inside a
        # kernel package is R301's concern, tested in test_lint_flow.py.
        f = put(
            tmp_path,
            "repro/network/mod.py",
            """
            import numpy as np

            def draw(seed: int) -> float:
                rng: np.random.Generator = np.random.default_rng(seed)
                return float(rng.random())
            """,
        )
        assert codes(lint_file(f, rules=RULES)) == []

    def test_rng_registry_module_is_allowlisted(self, tmp_path):
        source = """
            import numpy as np

            def master():
                return np.random.random()
            """
        allowed = put(tmp_path, "repro/sim/rng.py", source)
        elsewhere = put(tmp_path, "repro/sim/other.py", source)
        assert lint_file(allowed) == []
        assert codes(lint_file(elsewhere)) == ["D001"]


class TestD002WallClockRead:
    def test_time_time_fires(self, tmp_path):
        f = put(
            tmp_path,
            "repro/core/mod.py",
            """
            import time

            def stamp():
                return time.time()
            """,
        )
        assert codes(lint_file(f)) == ["D002"]

    def test_from_import_perf_counter_fires(self, tmp_path):
        f = put(
            tmp_path,
            "repro/core/mod.py",
            """
            from time import perf_counter

            def stamp():
                return perf_counter()
            """,
        )
        assert codes(lint_file(f)) == ["D002"]

    def test_datetime_now_fires(self, tmp_path):
        f = put(
            tmp_path,
            "repro/core/mod.py",
            """
            from datetime import datetime

            def stamp():
                return datetime.now()
            """,
        )
        assert codes(lint_file(f)) == ["D002"]

    def test_engine_time_is_clean(self, tmp_path):
        f = put(
            tmp_path,
            "repro/core/mod.py",
            """
            def stamp(engine):
                return engine.now_us
            """,
        )
        assert lint_file(f) == []

    def test_orchestrator_is_allowlisted(self, tmp_path):
        source = """
            import time

            def eta():
                return time.perf_counter()
            """
        allowed = put(tmp_path, "repro/sweep/orchestrator.py", source)
        elsewhere = put(tmp_path, "repro/sweep/cache.py", source)
        assert lint_file(allowed) == []
        assert codes(lint_file(elsewhere)) == ["D002"]

    def test_obs_profile_is_allowlisted(self, tmp_path):
        """The profiling module is the second (and last) D002 carve-out."""
        source = """
            import time

            def section():
                return time.perf_counter()
            """
        allowed = put(tmp_path, "repro/obs/profile.py", source)
        sibling = put(tmp_path, "repro/obs/events.py", source)
        kernel = put(tmp_path, "repro/network/runner2.py", source)
        assert lint_file(allowed) == []
        assert codes(lint_file(sibling)) == ["D002"]
        assert codes(lint_file(kernel)) == ["D002"]

    def test_carve_out_is_exactly_two_modules(self):
        """The allowlist must not silently grow: wall-clock reads are
        sanctioned in the orchestrator and the profiler, nowhere else."""
        assert LintConfig().wallclock_allow == frozenset(
            {"sweep/orchestrator.py", "obs/profile.py"}
        )


class TestD003UnorderedIteration:
    def test_set_literal_and_call_fire(self, tmp_path):
        f = put(
            tmp_path,
            "repro/network/mod.py",
            """
            def order(xs):
                for a in {1, 2, 3}:
                    pass
                return [y for y in set(xs)]
            """,
        )
        assert codes(lint_file(f)) == ["D003", "D003"]

    def test_keys_and_glob_fire(self, tmp_path):
        f = put(
            tmp_path,
            "repro/sweep/mod.py",
            """
            def walk(d, root):
                for k in d.keys():
                    pass
                for p in root.glob("*.csv"):
                    pass
            """,
        )
        assert codes(lint_file(f)) == ["D003", "D003"]

    def test_sorted_wrapping_is_clean(self, tmp_path):
        f = put(
            tmp_path,
            "repro/network/mod.py",
            """
            def order(xs, d, root):
                for a in sorted(set(xs)):
                    pass
                for k in sorted(d):
                    pass
                for p in sorted(root.glob("*.csv")):
                    pass
            """,
        )
        assert lint_file(f) == []

    def test_out_of_scope_package_is_clean(self, tmp_path):
        source = """
            def order(xs):
                return [y for y in set(xs)]
            """
        out = put(tmp_path, "repro/analysis/mod.py", source)
        scoped = put(tmp_path, "repro/phy/mod.py", source)
        assert lint_file(out) == []
        assert codes(lint_file(scoped)) == ["D003"]


class TestD004TimeFloatEquality:
    def test_eq_on_us_names_fires(self, tmp_path):
        f = put(
            tmp_path,
            "repro/clocks/mod.py",
            """
            def same(a_us, b_us, t_tu):
                if a_us == b_us:
                    return True
                return t_tu != 0.0
            """,
        )
        assert codes(lint_file(f)) == ["D004", "D004"]

    def test_attribute_and_converter_fire(self, tmp_path):
        f = put(
            tmp_path,
            "repro/clocks/mod.py",
            """
            from repro.sim.units import us_to_s

            def same(beacon, t):
                return us_to_s(t) == beacon.target_s
            """,
        )
        assert codes(lint_file(f)) == ["D004"]

    def test_tolerance_and_ordering_are_clean(self, tmp_path):
        f = put(
            tmp_path,
            "repro/clocks/mod.py",
            """
            import math

            def same(a_us, b_us, name):
                if abs(a_us - b_us) <= 1e-9 or a_us < b_us:
                    return True
                if name == "root":
                    return False
                if a_us is None:
                    return False
                return math.isclose(a_us, b_us)
            """,
        )
        assert lint_file(f) == []

    def test_non_time_names_are_clean(self, tmp_path):
        f = put(
            tmp_path,
            "repro/clocks/mod.py",
            """
            def same(count, total):
                return count == total
            """,
        )
        assert lint_file(f) == []


class TestD005MutableDefaultArg:
    def test_literal_defaults_fire(self, tmp_path):
        f = put(
            tmp_path,
            "repro/core/mod.py",
            """
            def f(xs=[]):
                return xs

            def g(*, table={}):
                return table
            """,
        )
        assert codes(lint_file(f)) == ["D005", "D005"]

    def test_constructor_default_fires(self, tmp_path):
        f = put(
            tmp_path,
            "repro/core/mod.py",
            """
            def f(xs=list()):
                return xs
            """,
        )
        assert codes(lint_file(f)) == ["D005"]

    def test_none_and_tuple_defaults_are_clean(self, tmp_path):
        f = put(
            tmp_path,
            "repro/core/mod.py",
            """
            def f(xs=None, anchor=(), name="x"):
                return list(xs or anchor)
            """,
        )
        assert lint_file(f) == []


class TestD006DirectHashlib:
    def test_import_fires(self, tmp_path):
        f = put(
            tmp_path,
            "repro/mac/mod.py",
            """
            import hashlib

            def digest(b):
                return hashlib.sha256(b).digest()
            """,
        )
        assert codes(lint_file(f)) == ["D006"]

    def test_from_import_fires(self, tmp_path):
        f = put(
            tmp_path,
            "repro/mac/mod.py",
            """
            from hashlib import sha256
            """,
        )
        assert codes(lint_file(f)) == ["D006"]

    def test_primitives_module_is_allowlisted(self, tmp_path):
        f = put(
            tmp_path,
            "repro/crypto/primitives.py",
            """
            import hashlib

            def digest(b):
                return hashlib.sha256(b).digest()
            """,
        )
        assert lint_file(f) == []


class TestPragmas:
    DIRTY = """
        import hashlib{pragma}

        def f(t_us, u_us):
            return t_us == u_us
        """

    def test_same_line_disable_suppresses_only_that_code(self, tmp_path):
        f = put(
            tmp_path,
            "repro/mac/mod.py",
            self.DIRTY.format(pragma="  # reprolint: disable=D006 -- cache key"),
        )
        assert codes(lint_file(f)) == ["D004"]

    def test_wrong_code_does_not_suppress(self, tmp_path):
        f = put(
            tmp_path,
            "repro/mac/mod.py",
            self.DIRTY.format(pragma="  # reprolint: disable=D001"),
        )
        assert codes(lint_file(f)) == ["D006", "D004"]

    def test_disable_next_line(self, tmp_path):
        f = put(
            tmp_path,
            "repro/mac/mod.py",
            """
            # reprolint: disable-next=D006
            import hashlib
            """,
        )
        assert lint_file(f) == []

    # One (code, fixture) pair per rule; {P} marks the flagged line.
    CASES = [
        ("D001", "import numpy as np\nx = np.random.random(){P}\n"),
        ("D002", "import time\nt = time.time(){P}\n"),
        ("D003", "for a in {{1, 2}}:{P}\n    pass\n"),
        ("D004", "def f(a_us, b_us):\n    return a_us == b_us{P}\n"),
        ("D005", "def f(xs=[]):{P}\n    return xs\n"),
        ("D006", "import hashlib{P}\n"),
    ]

    @pytest.mark.parametrize("code,template", CASES)
    def test_every_rule_fires_and_suppresses(self, tmp_path, code, template):
        dirty = put(tmp_path, "repro/network/dirty.py", template.format(P=""))
        assert codes(lint_file(dirty)) == [code]
        pragma = f"  # reprolint: disable={code} -- test justification"
        clean = put(tmp_path, "repro/network/clean.py", template.format(P=pragma))
        assert lint_file(clean) == []

    def test_disable_file_and_code_list(self, tmp_path):
        f = put(
            tmp_path,
            "repro/mac/mod.py",
            """
            # reprolint: disable-file=D006,D004
            import hashlib

            def f(t_us, u_us):
                return t_us == u_us
            """,
        )
        assert lint_file(f) == []


class TestEngine:
    def test_package_relative(self):
        assert package_relative(Path("src/repro/sim/rng.py")) == "sim/rng.py"
        assert package_relative(Path("/a/b/repro/sweep/spec.py")) == "sweep/spec.py"
        assert package_relative(Path("scratch/mod.py")) == "mod.py"

    def test_syntax_error_yields_d000(self, tmp_path):
        f = put(tmp_path, "repro/core/mod.py", "def broken(:\n")
        diags = lint_file(f)
        assert codes(diags) == ["D000"]
        assert "does not parse" in diags[0].message

    def test_directory_expansion_is_sorted_and_stable(self, tmp_path):
        put(tmp_path, "repro/mac/b.py", "import hashlib\n")
        put(tmp_path, "repro/mac/a.py", "import hashlib\n")
        first = lint_paths([tmp_path])
        second = lint_paths([tmp_path])
        assert first == second
        assert [d.path for d in first] == sorted(d.path for d in first)

    def test_custom_config_scopes_rules(self, tmp_path):
        f = put(tmp_path, "repro/analysis/mod.py", "x = [y for y in set(range(3))]\n")
        widened = LintConfig(ordered_packages=frozenset({"analysis"}))
        assert lint_file(f) == []
        assert codes(lint_file(f, config=widened)) == ["D003"]

    def test_repo_tree_is_clean(self):
        # The CI gate: the shipped package has no findings and no baseline.
        diags = lint_paths([SRC_REPRO])
        assert diags == [], "\n".join(d.render() for d in diags)


class TestBaseline:
    def test_roundtrip_suppresses_exactly_once(self, tmp_path):
        f = put(tmp_path, "repro/mac/mod.py", "import hashlib\n")
        diags = lint_file(f)
        baseline_file = tmp_path / "baseline.json"
        write_baseline(baseline_file, diags)
        baseline = load_baseline(baseline_file)
        assert apply_baseline(diags, baseline) == []
        # A second identical finding is NOT grandfathered.
        doubled = diags + [Diagnostic(diags[0].path, 9, 0, "D006", diags[0].message)]
        fresh = apply_baseline(doubled, load_baseline(baseline_file))
        assert codes(fresh) == ["D006"]

    def test_new_findings_survive_baseline(self, tmp_path):
        f = put(tmp_path, "repro/mac/mod.py", "import hashlib\n")
        baseline_file = tmp_path / "baseline.json"
        write_baseline(baseline_file, lint_file(f))
        put(
            tmp_path,
            "repro/mac/mod.py",
            """
            import hashlib

            def f(xs=[]):
                return xs
            """,
        )
        fresh = apply_baseline(lint_file(f), load_baseline(baseline_file))
        assert codes(fresh) == ["D005"]

    def test_malformed_baseline_is_rejected(self, tmp_path):
        bad = tmp_path / "baseline.json"
        bad.write_text('{"version": 99}')
        with pytest.raises(ValueError):
            load_baseline(bad)


class TestCli:
    def test_exit_one_on_findings(self, tmp_path, capsys):
        f = put(tmp_path, "repro/mac/mod.py", "import hashlib\n")
        assert lint_main([str(f)]) == 1
        out = capsys.readouterr().out
        assert "D006" in out and "repro/mac/mod.py" in out

    def test_exit_zero_on_clean(self, tmp_path, capsys):
        f = put(tmp_path, "repro/mac/mod.py", "VALUE = 3\n")
        assert lint_main([str(f)]) == 0
        assert "clean" in capsys.readouterr().err

    def test_baseline_workflow_exit_codes(self, tmp_path):
        f = put(tmp_path, "repro/mac/mod.py", "import hashlib\n")
        baseline = tmp_path / "baseline.json"
        assert lint_main([str(f), "--baseline", str(baseline), "--write-baseline"]) == 0
        assert lint_main([str(f), "--baseline", str(baseline)]) == 0
        put(tmp_path, "repro/mac/mod.py", "import hashlib\nfrom hashlib import sha1\n")
        assert lint_main([str(f), "--baseline", str(baseline)]) == 1

    def test_usage_errors_exit_two(self, tmp_path):
        with pytest.raises(SystemExit) as exc:
            lint_main([str(tmp_path / "missing.py")])
        assert exc.value.code == 2
        f = put(tmp_path, "repro/mac/mod.py", "VALUE = 3\n")
        with pytest.raises(SystemExit) as exc:
            lint_main([str(f), "--write-baseline"])
        assert exc.value.code == 2

    def test_list_rules_covers_all_codes(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in ("D001", "D002", "D003", "D004", "D005", "D006"):
            assert code in out

    def test_experiments_cli_lint_subcommand(self, tmp_path):
        from repro.experiments.cli import main as repro_main

        dirty = put(tmp_path, "repro/mac/mod.py", "import hashlib\n")
        clean = put(tmp_path, "repro/mac/ok.py", "VALUE = 3\n")
        assert repro_main(["lint", str(clean)]) == 0
        assert repro_main(["lint", str(dirty)]) == 1
