"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.clocks.oscillator import HardwareClock
from repro.core.backend import ModeledCryptoBackend
from repro.core.config import SstspConfig
from repro.crypto.mutesla import IntervalSchedule
from repro.sim.rng import RngRegistry


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def rngs() -> RngRegistry:
    return RngRegistry(12345)


@pytest.fixture
def sstsp_config() -> SstspConfig:
    return SstspConfig()


@pytest.fixture
def schedule(sstsp_config) -> IntervalSchedule:
    return IntervalSchedule(
        t0_us=sstsp_config.t0_us,
        interval_us=sstsp_config.beacon_period_us,
        length=512,
    )


@pytest.fixture
def modeled_backend(schedule) -> ModeledCryptoBackend:
    return ModeledCryptoBackend(schedule)


def make_clock(ppm: float = 0.0, offset_us: float = 0.0) -> HardwareClock:
    """A hardware clock with the given skew in ppm."""
    return HardwareClock(rate=1.0 + ppm * 1e-6, initial_offset=offset_us)
