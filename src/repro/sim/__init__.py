"""Discrete-event simulation kernel.

The kernel is deliberately small: a binary-heap event queue with stable
FIFO tie-breaking (:class:`~repro.sim.engine.Simulator`), cancellable event
handles, and a registry of independently seeded RNG streams
(:class:`~repro.sim.rng.RngRegistry`) so that adding a consumer of
randomness never perturbs the draws seen by existing consumers.
"""

from repro.sim.engine import Event, Simulator, SimulationError
from repro.sim.rng import RngRegistry
from repro.sim.units import MS, S, US, us_to_s, s_to_us

__all__ = [
    "Event",
    "Simulator",
    "SimulationError",
    "RngRegistry",
    "US",
    "MS",
    "S",
    "us_to_s",
    "s_to_us",
]
