"""Deeper unit tests of SSTSP internals: pace reset, pruning, recovery,
logging, and the extension knobs."""

import logging

import numpy as np
import pytest

from repro.core.backend import ModeledCryptoBackend
from repro.core.config import SstspConfig
from repro.core.sstsp import SstspProtocol, SstspState
from repro.crypto.mutesla import IntervalSchedule
from repro.protocols.base import RxContext

BP = 100_000.0


def make_backend(config, nodes=8, length=512):
    backend = ModeledCryptoBackend(
        IntervalSchedule(config.t0_us, config.beacon_period_us, length)
    )
    for node in range(nodes):
        backend.register_node(node)
    return backend


def make_node(node_id, config, backend, **kw):
    return SstspProtocol(
        node_id, config, backend, np.random.default_rng(node_id), **kw
    )


def rx_at(period, hw_offset=10.0, est=None):
    hw = period * BP + hw_offset
    return RxContext(hw, hw, period * BP + 64.0 if est is None else est, period)


class TestPaceReset:
    def test_transient_slope_clamped_on_first_reference_beacon(self):
        config = SstspConfig(reference_pace_clamp=3e-4)
        backend = make_backend(config)
        proto = make_node(1, config, backend)
        # simulate a hard mid-slew state: slope 2e-3 (legal transiently)
        proto.clock.slew_to(0.0, 1.002, at_local_time=BP)
        proto.begin_period(2)
        proto.end_period(2, False, True, True)  # wins: becomes reference
        assert proto.state is SstspState.REFERENCE
        proto.make_frame(hw_time=3 * BP, period=3)
        assert abs(proto.clock.k - 1.0) <= 3e-4 + 1e-12
        # continuity preserved at the clamp instant
        assert proto.clock.is_monotonic(BP, 4 * BP)

    def test_healthy_slope_untouched(self):
        config = SstspConfig()
        backend = make_backend(config)
        proto = make_node(1, config, backend)
        proto.clock.slew_to(0.0, 1.0001, at_local_time=BP)
        proto.begin_period(2)
        proto.end_period(2, False, True, True)
        proto.make_frame(hw_time=3 * BP, period=3)
        assert proto.clock.k == pytest.approx(1.0001)


class TestPendingPrune:
    def test_old_pending_records_dropped(self):
        config = SstspConfig(max_sample_age_periods=2)
        backend = make_backend(config)
        proto = make_node(1, config, backend)
        proto._pending_rx[(2, 1)] = (1.0, 1.0)
        proto._pending_rx[(2, 99)] = (1.0, 1.0)
        # horizon = current - max_sample_age - 2 = 96: older records drop
        proto._prune_pending(current_interval=100)
        assert (2, 1) not in proto._pending_rx
        assert (2, 99) in proto._pending_rx


class TestRecoveryExtension:
    def test_disabled_by_default(self):
        config = SstspConfig()
        backend = make_backend(config)
        proto = make_node(1, config, backend)
        for period in range(1, 30):
            bad = backend.make_frame(2, period, period * BP + 50_000.0)
            proto.on_beacon(bad, rx_at(period, est=period * BP + 50_000.0))
        assert proto.state is not SstspState.COARSE
        assert proto.stats.recoveries == 0

    def test_triggers_after_threshold(self, caplog):
        config = SstspConfig(recovery_rejection_threshold=5)
        backend = make_backend(config)
        proto = make_node(1, config, backend)
        with caplog.at_level(logging.WARNING, logger="repro.core.sstsp"):
            for period in range(1, 8):
                bad = backend.make_frame(2, period, period * BP + 50_000.0)
                proto.on_beacon(bad, rx_at(period, est=period * BP + 50_000.0))
        assert proto.stats.recoveries == 1
        assert proto.state is SstspState.COARSE
        assert any("restarting" in record.message for record in caplog.records)

    def test_counter_resets_on_valid_beacon(self):
        config = SstspConfig(recovery_rejection_threshold=5)
        backend = make_backend(config)
        proto = make_node(1, config, backend)
        for period in range(1, 5):
            bad = backend.make_frame(2, period, period * BP + 50_000.0)
            proto.on_beacon(bad, rx_at(period, est=period * BP + 50_000.0))
        good = backend.make_frame(2, 5, 5 * BP)
        proto.on_beacon(good, rx_at(5))
        assert proto._consecutive_guard_rejections == 0
        assert proto.stats.recoveries == 0


class TestElectionLogging:
    def test_reference_promotion_logged(self, caplog):
        config = SstspConfig()
        backend = make_backend(config)
        proto = make_node(3, config, backend)
        with caplog.at_level(logging.INFO, logger="repro.core.sstsp"):
            proto.begin_period(1)
            proto.end_period(1, False, True, True)
        assert any("became the reference" in r.message for r in caplog.records)


class TestIsSynchronized:
    def test_coarse_not_synchronized(self):
        config = SstspConfig()
        backend = make_backend(config)
        joiner = make_node(1, config, backend, founding=False)
        assert not joiner.is_synchronized()
        founder = make_node(2, config, backend, founding=True)
        assert founder.is_synchronized()


class TestInitialOffset:
    def test_initial_offset_applied(self):
        config = SstspConfig()
        backend = make_backend(config)
        proto = make_node(1, config, backend, initial_offset_us=55.0)
        assert proto.synchronized_time(100.0) == pytest.approx(155.0)
