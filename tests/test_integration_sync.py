"""End-to-end integration tests: the paper's qualitative claims.

These exercise whole simulated networks and pin down the *shape* results
the evaluation section reports: SSTSP converges to a few microseconds and
beats TSF by an order of magnitude; TSF degrades with network size; the
insider attack desynchronizes TSF but not SSTSP; reference changes are
survived; the adjusted clocks never leap.
"""

import numpy as np

from repro.analysis.metrics import audit_no_leaps, sync_latency_us
from repro.core.config import SstspConfig
from repro.core.sstsp import SstspState
from repro.network.churn import REFERENCE_MARKER, ChurnEvent
from repro.network.ibss import AttackerSpec, ScenarioSpec, build_network
from repro.sim.units import S


def window_max(trace, a_s, b_s):
    return float(trace.window(a_s * S, b_s * S).max_diff_us.max())


class TestConvergence:
    def test_sstsp_reaches_paper_accuracy(self):
        spec = ScenarioSpec(n=25, seed=1, duration_s=30.0)
        trace = build_network("sstsp", spec).run().trace
        # paper: below 10 us after stabilisation (2 * epsilon + residuals)
        assert trace.steady_state_error_us() < 10.0

    def test_sstsp_beats_tsf_substantially(self):
        spec = ScenarioSpec(n=25, seed=1, duration_s=30.0)
        sstsp = build_network("sstsp", spec).run().trace
        tsf = build_network("tsf", spec).run().trace
        assert sstsp.steady_state_error_us() < tsf.steady_state_error_us() / 3

    def test_sync_latency_from_initial_offsets(self):
        # Table 1 setup: initial offsets +-112 us; synchronized = < 25 us
        spec = ScenarioSpec(n=20, seed=2, duration_s=10.0, initial_offset_us=112.0)
        trace = build_network("sstsp", spec).run().trace
        latency = sync_latency_us(trace)
        assert latency is not None
        assert latency < 3.0 * S  # converges within a few seconds

    def test_full_and_modeled_crypto_identical(self):
        spec = ScenarioSpec(n=8, seed=5, duration_s=6.0)
        full = build_network("sstsp", spec, crypto="full").run().trace
        modeled = build_network("sstsp", spec, crypto="modeled").run().trace
        assert np.array_equal(full.max_diff_us, modeled.max_diff_us)

    def test_no_leaps_in_any_adjusted_clock(self):
        spec = ScenarioSpec(n=12, seed=3, duration_s=10.0)
        result = build_network("sstsp", spec).run()
        for node in result.nodes:
            clock = node.protocol.clock
            assert audit_no_leaps(clock, 0.0, spec.duration_s * S)
            assert clock.adjustments >= 0


class TestScalability:
    def test_tsf_error_grows_with_network_size(self):
        small = ScenarioSpec(n=10, seed=7, duration_s=40.0)
        large = ScenarioSpec(n=80, seed=7, duration_s=40.0)
        err_small = build_network("tsf", small).run().trace.steady_state_error_us()
        err_large = build_network("tsf", large).run().trace.steady_state_error_us()
        assert err_large > err_small * 1.5

    def test_sstsp_insensitive_to_network_size(self):
        small = ScenarioSpec(n=10, seed=7, duration_s=20.0)
        large = ScenarioSpec(n=80, seed=7, duration_s=20.0)
        err_small = build_network("sstsp", small).run().trace.steady_state_error_us()
        err_large = build_network("sstsp", large).run().trace.steady_state_error_us()
        assert err_large < max(2.0 * err_small, 12.0)

    def test_collision_rate_grows_with_n_for_tsf(self):
        def collisions(n):
            spec = ScenarioSpec(n=n, seed=9, duration_s=10.0)
            return build_network("tsf", spec).run().channel.stats.collisions

        assert collisions(60) > collisions(10) * 2

    def test_sstsp_collisions_only_during_elections(self):
        spec = ScenarioSpec(n=60, seed=9, duration_s=10.0)
        result = build_network("sstsp", spec).run()
        # after the initial election there is a single transmitter per BP
        assert result.channel.stats.collisions < 10


class TestReferenceChange:
    def test_network_survives_reference_departures(self):
        spec = ScenarioSpec(n=15, seed=4, duration_s=30.0)
        runner = build_network("sstsp", spec)
        for period in (80, 160, 240):
            runner.churn.add(ChurnEvent(period, "leave", (REFERENCE_MARKER,)))
        result = runner.run()
        trace = result.trace
        assert trace.reference_changes() >= 3
        # re-converges to paper accuracy after the last change
        assert window_max(trace, 27.0, 30.0) < 15.0

    def test_lemma2_bound_on_transition_error(self):
        config = SstspConfig(l=1, m=2)
        spec = ScenarioSpec(n=15, seed=4, duration_s=20.0)
        runner = build_network("sstsp", spec, sstsp_config=config)
        runner.churn.add(ChurnEvent(100, "leave", (REFERENCE_MARKER,)))
        trace = runner.run().trace
        before = window_max(trace, 9.0, 10.0)
        transition = window_max(trace, 10.0, 11.5)
        # Lemma 2 allows a transient blow-up; it must stay bounded and small
        # relative to a beacon period, and recover afterwards
        assert transition < 100.0
        assert window_max(trace, 15.0, 20.0) < max(before * 2, 12.0)


class TestAttacks:
    def test_tsf_desynchronized_by_channel_attacker(self):
        spec = ScenarioSpec(
            n=20, seed=5, duration_s=30.0,
            attacker=AttackerSpec(start_s=10.0, end_s=20.0),
        )
        trace = build_network("tsf", spec).run().trace
        during = window_max(trace, 12.0, 20.0)
        before = window_max(trace, 5.0, 10.0)
        assert during > before * 5  # error keeps growing while attacked
        # error scales like drift * attack duration (paper: 20000 us @ 200 s)
        assert during > 500.0

    def test_sstsp_stays_synchronized_under_insider_attack(self):
        spec = ScenarioSpec(
            n=20, seed=5, duration_s=30.0,
            attacker=AttackerSpec(start_s=10.0, end_s=20.0, shave_per_period_us=40.0),
        )
        result = build_network("sstsp", spec).run()
        trace = result.trace
        during = window_max(trace, 11.0, 20.0)
        assert during < 60.0  # bounded by guard-driven slewing, not drift
        # the attacker held the channel the whole window
        assert result.nodes[-1].protocol.attack_beacons >= 95
        # ... while silently dragging the shared clock (the paper's "virtual
        # clock slightly different to the real clock")
        assert trace.mean_vs_true_us[-1] < -1_000.0
        # and the network recovers cleanly afterwards
        assert window_max(trace, 25.0, 30.0) < 15.0

    def test_sstsp_insider_cannot_exceed_guard_rate(self):
        # an attacker shaving more than the guard allows gets rejected and
        # loses the reference role
        spec = ScenarioSpec(
            n=15, seed=6, duration_s=20.0,
            attacker=AttackerSpec(start_s=5.0, end_s=15.0, shave_per_period_us=900.0),
        )
        result = build_network("sstsp", spec).run()
        rejections = sum(
            node.protocol.guard.stats.rejected
            for node in result.nodes[:-1]
        )
        assert rejections > 0
        # the network still recovers: a legitimate reference takes over
        assert window_max(result.trace, 17.0, 20.0) < 15.0


class TestChurnScenario:
    def test_paper_churn_pattern_survived(self):
        spec = ScenarioSpec(n=30, seed=8, duration_s=260.0, churn="paper")
        result = build_network("sstsp", spec).run()
        assert any("left" in e for e in result.events)
        assert any("returned" in e for e in result.events)
        # synchronized at the end despite departures and returns
        assert window_max(result.trace, 255.0, 260.0) < 15.0

    def test_rejoining_nodes_go_through_coarse(self):
        spec = ScenarioSpec(n=10, seed=8, duration_s=20.0)
        runner = build_network("sstsp", spec)
        runner.churn.add(ChurnEvent(50, "leave", (3,)))
        runner.churn.add(ChurnEvent(100, "return", (3,)))
        result = runner.run()
        node3 = result.nodes[3]
        assert node3.protocol.state in (SstspState.SYNCED, SstspState.REFERENCE)
        assert window_max(result.trace, 15.0, 20.0) < 15.0
