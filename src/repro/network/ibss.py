"""IBSS scenario builders.

One call builds a ready-to-run network: sampled clocks, channel,
per-node protocol drivers, optional churn and optional attacker - wired
with independent named RNG streams so scenarios are reproducible and
insensitive to construction order.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.clocks.population import ClockPopulation
from repro.core.backend import (
    CryptoBackend,
    FullCryptoBackend,
    ModeledCryptoBackend,
)
from repro.core.config import SstspConfig
from repro.core.sstsp import SstspProtocol
from repro.crypto.mutesla import IntervalSchedule
from repro.network.churn import ChurnSchedule
from repro.network.node import Node
from repro.network.runner import NetworkRunner, RunnerParams
from repro.phy.channel import BroadcastChannel
from repro.phy.params import (
    PhyParams,
    SSTSP_BEACON_AIRTIME_SLOTS,
    TSF_BEACON_AIRTIME_SLOTS,
)
from repro.protocols.atsp import AtspConfig, AtspProtocol
from repro.protocols.rentel import RentelConfig, RentelProtocol
from repro.protocols.satsf import SatsfConfig, SatsfProtocol
from repro.protocols.tatsp import TatspConfig, TatspProtocol
from repro.protocols.tsf import TsfConfig, TsfProtocol
from repro.security.attacks import (
    AttackWindow,
    SstspInsiderAttacker,
    TsfChannelAttacker,
)
from repro.sim.rng import RngRegistry
from repro.sim.units import S


@dataclass(frozen=True)
class AttackerSpec:
    """Attacker to add to a scenario (one extra, initially honest station).

    The attacker kind follows the network's protocol: the channel attacker
    for TSF-family networks, the guard-tuned insider for SSTSP.
    """

    start_s: float = 400.0
    end_s: float = 600.0
    #: Transmission lead: large enough to deterministically beat the honest
    #: reference (honest clock spread is ~+-10 us; "the attacker always
    #: wins the contentions").
    lead_slots: float = 5.0
    #: TSF attacker: how much slower than its clock the advertised time is.
    #: Large enough that no honest station ever falls behind it during the
    #: attack (otherwise the erroneous value would, ironically, act as a
    #: sync anchor for the slowest stations).
    error_offset_us: float = 50_000.0
    #: TSF attacker: TBTT pace boost guaranteeing it outruns any honest
    #: +-100 ppm oscillator ("the attacker always wins the contentions").
    pace_boost_us_per_period: float = 30.0
    #: SSTSP insider: per-BP timestamp shave (must stay under the guard).
    shave_per_period_us: float = 40.0


@dataclass(frozen=True)
class ScenarioSpec:
    """Shared shape of one simulated scenario (paper section 5 defaults)."""

    n: int = 100
    seed: int = 1
    duration_s: float = 100.0
    beacon_period_us: float = 0.1 * S
    drift_ppm: float = 100.0
    initial_offset_us: float = 0.0
    phy: PhyParams = field(default_factory=PhyParams)
    churn: Optional[str] = None  # None | "paper"
    attacker: Optional[AttackerSpec] = None

    def __post_init__(self) -> None:
        if self.n < 2:
            raise ValueError("a network needs at least 2 nodes")
        if self.duration_s <= 0:
            raise ValueError("duration_s must be > 0")

    @property
    def periods(self) -> int:
        return int(round(self.duration_s * S / self.beacon_period_us))


_TSF_FAMILY = {
    "tsf": (TsfConfig, TsfProtocol),
    "atsp": (AtspConfig, AtspProtocol),
    "tatsp": (TatspConfig, TatspProtocol),
    "satsf": (SatsfConfig, SatsfProtocol),
    "rentel": (RentelConfig, RentelProtocol),
}


def build_network(
    protocol: str,
    spec: ScenarioSpec,
    sstsp_config: Optional[SstspConfig] = None,
    crypto: str = "modeled",
) -> NetworkRunner:
    """Build a runnable network for any supported protocol.

    ``protocol`` is one of ``tsf``, ``atsp``, ``tatsp``, ``satsf``,
    ``rentel``, ``sstsp``. For SSTSP, ``crypto`` selects the beacon
    protection backend (``"full"`` or ``"modeled"``).
    """
    if protocol == "sstsp":
        return build_sstsp_network(spec, config=sstsp_config, crypto=crypto)
    if protocol in _TSF_FAMILY:
        return build_tsf_network(spec, protocol=protocol)
    raise ValueError(f"unknown protocol {protocol!r}")


def _sample_clocks(spec: ScenarioSpec, rngs: RngRegistry, count: int):
    population = ClockPopulation.sample(
        count,
        rngs.get("clocks"),
        drift_ppm=spec.drift_ppm,
        initial_offset_us=spec.initial_offset_us,
    )
    return [population.clock(i) for i in range(count)]


def _churn_for(spec: ScenarioSpec, rngs: RngRegistry, node_count: int):
    if spec.churn is None:
        return None
    if spec.churn != "paper":
        raise ValueError(f"unknown churn preset {spec.churn!r}")
    return ChurnSchedule.paper_default(
        node_ids=list(range(node_count)),
        total_periods=spec.periods,
        rng=rngs.get("churn"),
        beacon_period_us=spec.beacon_period_us,
    )


def build_tsf_network(
    spec: ScenarioSpec,
    protocol: str = "tsf",
    config=None,
) -> NetworkRunner:
    """Build a TSF-family network (TSF / ATSP / TATSP / SATSF / Rentel)."""
    config_cls, protocol_cls = _TSF_FAMILY[protocol]
    if config is None:
        config = config_cls(
            beacon_period_us=spec.beacon_period_us,
            slot_time_us=spec.phy.slot_time_us,
        )
    rngs = RngRegistry(spec.seed)
    extra = 1 if spec.attacker is not None else 0
    clocks = _sample_clocks(spec, rngs, spec.n + extra)

    nodes = []
    for i in range(spec.n):
        node = Node(i, clocks[i])
        node.protocol = protocol_cls(i, node.timer, config, rngs.get("proto", i))
        nodes.append(node)
    if spec.attacker is not None:
        attacker_id = spec.n
        node = Node(attacker_id, clocks[attacker_id])
        window = AttackWindow.from_seconds(
            spec.attacker.start_s, spec.attacker.end_s, spec.beacon_period_us
        )
        if protocol == "rentel":
            raise ValueError(
                "the channel attacker targets TSF-timer protocols; the "
                "controlled-clock scheme is outside its model"
            )
        # The channel attacker works against every TSF-family protocol:
        # the paper's section 5 notes the improved variants (ATSP, TATSP,
        # SATSF) "are also vulnerable to the attack because they depend on
        # the fast nodes to spread the timing information".
        node.protocol = TsfChannelAttacker(
            attacker_id,
            node.timer,
            config,
            rngs.get("proto", attacker_id),
            window=window,
            lead_slots=spec.attacker.lead_slots,
            error_offset_us=spec.attacker.error_offset_us,
            pace_boost_us_per_period=spec.attacker.pace_boost_us_per_period,
        )
        node.include_in_metrics = False
        nodes.append(node)

    phy = replace(spec.phy, beacon_airtime_slots=TSF_BEACON_AIRTIME_SLOTS)
    channel = BroadcastChannel(phy, rngs.get("channel"))
    params = RunnerParams(
        beacon_period_us=spec.beacon_period_us,
        periods=spec.periods,
        beacon_airtime_slots=TSF_BEACON_AIRTIME_SLOTS,
    )
    return NetworkRunner(
        nodes, channel, phy, params, churn=_churn_for(spec, rngs, spec.n)
    )


def build_sstsp_network(
    spec: ScenarioSpec,
    config: Optional[SstspConfig] = None,
    crypto: str = "modeled",
) -> NetworkRunner:
    """Build an SSTSP network, optionally with the insider attacker."""
    if config is None:
        config = SstspConfig(
            beacon_period_us=spec.beacon_period_us,
            slot_time_us=spec.phy.slot_time_us,
            rx_latency_us=(
                SSTSP_BEACON_AIRTIME_SLOTS * spec.phy.slot_time_us
                + spec.phy.propagation_delay_us
            ),
        )
    rngs = RngRegistry(spec.seed)
    extra = 1 if spec.attacker is not None else 0
    clocks = _sample_clocks(spec, rngs, spec.n + extra)

    schedule = IntervalSchedule(
        t0_us=config.t0_us,
        interval_us=config.beacon_period_us,
        length=spec.periods + config.m + 8,
    )
    backend: CryptoBackend
    if crypto == "full":
        backend = FullCryptoBackend(schedule, rngs.get("crypto"))
    elif crypto == "modeled":
        backend = ModeledCryptoBackend(schedule)
    else:
        raise ValueError(f"unknown crypto backend {crypto!r}")

    nodes = []
    for i in range(spec.n):
        backend.register_node(i)
        node = Node(i, clocks[i])
        node.protocol = SstspProtocol(
            i, config, backend, rngs.get("proto", i), founding=True
        )
        nodes.append(node)
    if spec.attacker is not None:
        attacker_id = spec.n
        backend.register_node(attacker_id)  # a *compromised* legitimate node
        node = Node(attacker_id, clocks[attacker_id])
        window = AttackWindow.from_seconds(
            spec.attacker.start_s, spec.attacker.end_s, spec.beacon_period_us
        )
        node.protocol = SstspInsiderAttacker(
            attacker_id,
            config,
            backend,
            rngs.get("proto", attacker_id),
            window=window,
            shave_per_period_us=spec.attacker.shave_per_period_us,
            lead_slots=spec.attacker.lead_slots,
        )
        node.include_in_metrics = False
        nodes.append(node)

    phy = replace(spec.phy, beacon_airtime_slots=SSTSP_BEACON_AIRTIME_SLOTS)
    channel = BroadcastChannel(phy, rngs.get("channel"))
    params = RunnerParams(
        beacon_period_us=spec.beacon_period_us,
        periods=spec.periods,
        beacon_airtime_slots=SSTSP_BEACON_AIRTIME_SLOTS,
    )
    return NetworkRunner(
        nodes, channel, phy, params, churn=_churn_for(spec, rngs, spec.n)
    )
