"""``repro analyze`` — statistical roll-ups of sweep output.

Subcommands
-----------

``table1``
    Re-resolve the Table 1 ``m x replica`` grid through the sweep
    orchestrator (a warm cache serves every cell without executing
    anything) and emit the **Table-1-with-CIs** view: per-``m`` mean /
    median / Student-t and seeded-bootstrap 95% intervals over the
    replicas, side by side with the paper's numbers, plus a
    failure/quarantine digest from the PR 6 failure records. Writes
    ``results/analysis/<name>_summary.csv`` / ``.md`` and
    ``<name>_failures.csv``.
``shootout``
    Re-resolve the multi-hop shootout grid (protocol x scenario x
    replica; see :mod:`repro.experiments.shootout`) and roll each
    (protocol, scenario) group's replicas into accuracy / convergence /
    beacon-traffic / bytes-on-air means with the same CI machinery.
    Writes ``results/analysis/<name>_summary.csv`` / ``.md`` and
    ``<name>_failures.csv``.
``log``
    Roll one sweep run log (the JSONL written under
    ``results/sweep_logs/``) into per-kind job/wall-time tables, a
    resilience digest (retries, quarantines, worker crashes), and the
    merged metrics-registry roll-up (``merge_snapshots`` over every
    ``job_obs`` record). Writes ``<name>_log_summary.csv`` / ``.md`` and
    ``<name>_log_metrics.csv``.
``bench``
    Roll the committed ``BENCH_*.json`` trajectory files (see
    :mod:`repro.analysis.benchgate`) into a cross-label trend view:
    per-benchmark wall-time medians and deterministic work totals,
    columns ordered by label (numeric labels numerically). Writes
    ``results/analysis/<name>_trend.csv`` / ``.md``.

Every emitted file is **byte-stable**: floats are serialized with
``repr`` in CSVs and fixed formats in markdown, rows are sorted, and the
bootstrap is seeded — so the same sweep analyzed at any worker count, or
after a ``--resume``, produces identical bytes (pinned in
``tests/test_analyze_cli.py``).
"""

from __future__ import annotations

import argparse
import json
import math
import os
import sys
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.analysis.stats import SummaryStats, summarize_values
from repro.obs.registry import merge_snapshots, snapshot_rows
from repro.sim.units import S
from repro.sweep import run_sweep, sweep_options_from_args
from repro.sweep.failpolicy import JobFailure

#: Subdirectory of the results dir receiving analysis tables.
ANALYSIS_SUBDIR = "analysis"


def ensure_analysis_dir() -> str:
    """Create (if needed) and return ``results/analysis``."""
    from repro.experiments.report import ensure_results_dir

    path = os.path.join(ensure_results_dir(), ANALYSIS_SUBDIR)
    os.makedirs(path, exist_ok=True)
    return path


def _write_text(path: str, text: str) -> str:
    """Write ``text`` exactly (byte-stable: LF newlines, utf-8)."""
    with open(path, "w", encoding="utf-8", newline="\n") as fh:
        fh.write(text)
    return path


def _fmt(value: Optional[float], digits: int = 4) -> str:
    """Markdown cell format: fixed significant digits, 'n/a' for None."""
    if value is None:
        return "n/a"
    if math.isinf(value):
        return "inf" if value > 0 else "-inf"
    return f"{value:.{digits}g}"


def _ci_cell(stats_obj: SummaryStats, scale: float = 1.0) -> str:
    """``[low, high]`` markdown cell of a summary's t interval."""
    low, high = stats_obj.t_ci.low, stats_obj.t_ci.high
    return f"[{_fmt(low / scale if math.isfinite(low) else low)}, " \
           f"{_fmt(high / scale if math.isfinite(high) else high)}]"


def markdown_table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    """A GitHub-style markdown table (deterministic bytes).

    Cell text is pipe-escaped — metric keys like ``name|node=2`` must
    not open a new column.
    """
    def cell(text: str) -> str:
        return text.replace("|", "\\|")

    lines = [
        "| " + " | ".join(cell(h) for h in headers) + " |",
        "|" + "|".join(" --- " for _ in headers) + "|",
    ]
    for row in rows:
        lines.append("| " + " | ".join(cell(c) for c in row) + " |")
    return "\n".join(lines)


def _stat_csv_fields(stats_obj: Optional[SummaryStats], scale: float = 1.0) -> List[str]:
    """CSV cells (repr floats) for one metric summary; blank when absent."""
    if stats_obj is None:
        return [""] * 8
    def scaled(value: float) -> str:
        return repr(value / scale if math.isfinite(value) else value)
    return [
        str(stats_obj.n),
        scaled(stats_obj.mean),
        scaled(stats_obj.median),
        scaled(stats_obj.std),
        scaled(stats_obj.t_ci.low),
        scaled(stats_obj.t_ci.high),
        scaled(stats_obj.bootstrap_ci.low),
        scaled(stats_obj.bootstrap_ci.high),
    ]


# ----------------------------------------------------------------------
# analyze table1
# ----------------------------------------------------------------------


def failures_csv_text(failures: Sequence[JobFailure]) -> str:
    """The quarantine digest as CSV (header always present)."""
    lines = ["seq,kind,hash,reason,attempts,message"]
    for failure in sorted(failures, key=lambda f: f.seq):
        message = failure.message.replace("\n", " ").replace(",", ";")
        lines.append(
            f"{failure.seq},{failure.kind},{failure.hash},"
            f"{failure.reason},{failure.attempts},{message}"
        )
    return "\n".join(lines) + "\n"


def table1_summaries(
    m_values: Sequence[int],
    cells: Sequence[Optional[Dict[str, Any]]],
    replicas: int,
) -> "List[Tuple[int, int, int, Optional[SummaryStats], Optional[SummaryStats]]]":
    """Per-``m`` roll-up of raw Table 1 cells.

    Returns ``(m, quarantined, unsynced, latency_stats, error_stats)``
    tuples; a fully-quarantined ``m`` keeps its row with ``None`` stats
    (downstream tables must tolerate missing cells, not raise — the
    PR 6 contract).
    """
    rows = []
    for i, m in enumerate(m_values):
        latencies: List[Optional[float]] = []
        errors: List[Optional[float]] = []
        quarantined = 0
        unsynced = 0
        for replica in range(replicas):
            cell = cells[i * replicas + replica]
            if cell is None:  # quarantined cell: a None gap, not an error
                quarantined += 1
                continue
            if cell["latency_us"] is None:
                unsynced += 1
            else:
                latencies.append(cell["latency_us"])
            errors.append(cell["error_us"])
        latency_stats = summarize_values(latencies) if latencies else None
        error_stats = summarize_values(errors) if errors else None
        rows.append((m, quarantined, unsynced, latency_stats, error_stats))
    return rows


def table1_summary_csv_text(
    rows: Sequence[Tuple[int, int, int, Optional[SummaryStats], Optional[SummaryStats]]],
    replicas: int,
) -> str:
    """The Table-1-with-CIs summary as CSV (repr floats; latency in s)."""
    header = (
        "m,cells,quarantined,unsynced,"
        "latency_n,latency_mean_s,latency_median_s,latency_std_s,"
        "latency_t_lo_s,latency_t_hi_s,latency_boot_lo_s,latency_boot_hi_s,"
        "error_n,error_mean_us,error_median_us,error_std_us,"
        "error_t_lo_us,error_t_hi_us,error_boot_lo_us,error_boot_hi_us"
    )
    lines = [header]
    for m, quarantined, unsynced, latency_stats, error_stats in rows:
        cells = [str(m), str(replicas), str(quarantined), str(unsynced)]
        cells += _stat_csv_fields(latency_stats, scale=S)
        cells += _stat_csv_fields(error_stats)
        lines.append(",".join(cells))
    return "\n".join(lines) + "\n"


def table1_summary_md_text(
    rows: Sequence[Tuple[int, int, int, Optional[SummaryStats], Optional[SummaryStats]]],
    replicas: int,
    failures: Sequence[JobFailure],
) -> str:
    """The Table-1-with-CIs view as markdown, plus the failure digest."""
    from repro.experiments.table1 import PAPER_ROWS

    headers = [
        "m", "latency (s)", "latency 95% CI (s)",
        "error (us)", "error 95% CI (us)",
        "paper latency (s)", "paper error (us)", "n", "missing",
    ]
    body: List[List[str]] = []
    for m, quarantined, unsynced, latency_stats, error_stats in rows:
        paper_latency, paper_error = PAPER_ROWS.get(m, (None, None))
        body.append([
            str(m),
            _fmt(latency_stats.mean / S) if latency_stats else "n/a",
            _ci_cell(latency_stats, scale=S) if latency_stats else "n/a",
            _fmt(error_stats.mean) if error_stats else "n/a",
            _ci_cell(error_stats) if error_stats else "n/a",
            _fmt(paper_latency),
            _fmt(paper_error),
            str(error_stats.n if error_stats else 0),
            str(quarantined + unsynced),
        ])
    parts = [
        "# Table 1 with confidence intervals",
        "",
        f"Replicas per m: {replicas}. Intervals are two-sided 95% "
        "(Student-t; the CSV adds the seeded-bootstrap interval). "
        "`missing` counts quarantined cells plus replicas that never "
        "reached the 25 us threshold.",
        "",
        markdown_table(headers, body),
        "",
        "## Failure digest",
        "",
    ]
    if failures:
        parts.append(markdown_table(
            ["seq", "kind", "hash", "reason", "attempts"],
            [
                [str(f.seq), f.kind, f.hash, f.reason, str(f.attempts)]
                for f in sorted(failures, key=lambda f: f.seq)
            ],
        ))
    else:
        parts.append("No quarantined jobs.")
    return "\n".join(parts) + "\n"


def _cmd_table1(args: argparse.Namespace) -> int:
    from repro.experiments.table1 import cell_specs

    replicas = args.replicas
    specs = cell_specs(
        args.m_values, args.nodes, args.duration, args.seed, replicas
    )
    result = run_sweep(f"{args.name}_analyze", specs, sweep_options_from_args(args))
    rows = table1_summaries(args.m_values, result.values, replicas)
    out_dir = ensure_analysis_dir()
    csv_text = table1_summary_csv_text(rows, replicas)
    md_text = table1_summary_md_text(rows, replicas, result.failures)
    csv_path = _write_text(
        os.path.join(out_dir, f"{args.name}_summary.csv"), csv_text
    )
    md_path = _write_text(
        os.path.join(out_dir, f"{args.name}_summary.md"), md_text
    )
    failures_path = _write_text(
        os.path.join(out_dir, f"{args.name}_failures.csv"),
        failures_csv_text(result.failures),
    )
    print(md_text)
    print(f"summary CSV:  {csv_path}")
    print(f"summary MD:   {md_path}")
    print(f"failures CSV: {failures_path}")
    return 0


# ----------------------------------------------------------------------
# analyze shootout
# ----------------------------------------------------------------------


#: (protocol, scenario, cells, quarantined, unconverged, metric stats...)
ShootoutRow = Tuple[
    str, str, int, int, int,
    Optional[SummaryStats], Optional[SummaryStats],
    Optional[SummaryStats], Optional[SummaryStats],
]


def shootout_summaries(
    payloads: Sequence[Optional[Dict[str, Any]]],
    keys: Optional[Sequence[Tuple[str, str]]] = None,
) -> List[ShootoutRow]:
    """Per-(protocol, scenario) roll-up of raw shootout cells.

    ``keys`` is the parallel (protocol, scenario) sequence from the spec
    grid; with it, quarantined cells (``None`` payloads) count against
    their own group. Groups stay in first-seen (spec) order —
    protocol-major, then scenario — so the summary bytes don't depend on
    dict iteration accidents. Quarantined and never-converged replicas
    are counted, not raised on (the PR 6 missing-cells contract:
    fully-quarantined groups keep their row with ``None`` stats).
    """
    order: List[Tuple[str, str]] = []
    groups: Dict[Tuple[str, str], Dict[str, List[Any]]] = {}

    def group_for(key: Tuple[str, str]) -> Dict[str, List[Any]]:
        if key not in groups:
            order.append(key)
            groups[key] = {
                "steady": [], "convergence": [], "beacons": [], "bytes": [],
                "quarantined": [],
            }
        return groups[key]

    for i, payload in enumerate(payloads):
        if payload is None:
            if keys is not None and i < len(keys):
                group_for(keys[i])["quarantined"].append(1)
            continue
        group = group_for((str(payload["protocol"]), str(payload["scenario"])))
        group["steady"].append(payload["steady_state_error_us"])
        group["convergence"].append(payload["convergence_time_s"])
        group["beacons"].append(payload["beacons_sent"])
        group["bytes"].append(payload["bytes_on_air"])
    rows: List[ShootoutRow] = []
    for key in order:
        group = groups[key]
        quarantined = len(group["quarantined"])
        cells = len(group["steady"]) + quarantined
        convergences = [c for c in group["convergence"] if c is not None]
        unconverged = len(group["steady"]) - len(convergences)

        def stats(values: List[Any]) -> Optional[SummaryStats]:
            cleaned = [float(v) for v in values if v is not None]
            return summarize_values(cleaned) if cleaned else None

        rows.append(
            (
                key[0], key[1], cells, quarantined, unconverged,
                stats(group["steady"]),
                stats(convergences),
                stats(group["beacons"]),
                stats(group["bytes"]),
            )
        )
    return rows


def shootout_summary_csv_text(rows: Sequence[ShootoutRow]) -> str:
    """The shootout-with-CIs summary as CSV (repr floats)."""
    header = "protocol,scenario,cells,quarantined,unconverged"
    for metric, unit in (
        ("steady", "us"), ("convergence", "s"),
        ("beacons", ""), ("bytes", ""),
    ):
        suffix = f"_{unit}" if unit else ""
        header += (
            f",{metric}_n,{metric}_mean{suffix},{metric}_median{suffix},"
            f"{metric}_std{suffix},{metric}_t_lo{suffix},"
            f"{metric}_t_hi{suffix},{metric}_boot_lo{suffix},"
            f"{metric}_boot_hi{suffix}"
        )
    lines = [header]
    for protocol, scenario, cells, quarantined, unconverged, steady, conv, beacons, nbytes in rows:
        fields = [protocol, scenario, str(cells), str(quarantined), str(unconverged)]
        fields += _stat_csv_fields(steady)
        fields += _stat_csv_fields(conv)
        fields += _stat_csv_fields(beacons)
        fields += _stat_csv_fields(nbytes)
        lines.append(",".join(fields))
    return "\n".join(lines) + "\n"


def shootout_summary_md_text(
    rows: Sequence[ShootoutRow],
    replicas: int,
    failures: Sequence[JobFailure],
) -> str:
    """The shootout roll-up as markdown, plus the failure digest."""
    headers = [
        "protocol", "scenario", "steady err (us)", "steady 95% CI (us)",
        "converge (s)", "converge 95% CI (s)", "beacons", "bytes on air",
        "n", "missing",
    ]
    body: List[List[str]] = []
    for protocol, scenario, cells, quarantined, unconverged, steady, conv, beacons, nbytes in rows:
        body.append([
            protocol,
            scenario,
            _fmt(steady.mean) if steady else "n/a",
            _ci_cell(steady) if steady else "n/a",
            _fmt(conv.mean) if conv else "n/a",
            _ci_cell(conv) if conv else "n/a",
            _fmt(beacons.mean) if beacons else "n/a",
            _fmt(nbytes.mean) if nbytes else "n/a",
            str(cells),
            str(quarantined + unconverged),
        ])
    parts = [
        "# Multi-hop shootout with confidence intervals",
        "",
        f"Replicas per (protocol, scenario): {replicas}. Intervals are "
        "two-sided 95% (Student-t; the CSV adds the seeded-bootstrap "
        "interval). `missing` counts quarantined cells plus replicas "
        "whose network-wide error never settled under the convergence "
        "threshold.",
        "",
        markdown_table(headers, body),
        "",
        "## Failure digest",
        "",
    ]
    if failures:
        parts.append(markdown_table(
            ["seq", "kind", "hash", "reason", "attempts"],
            [
                [str(f.seq), f.kind, f.hash, f.reason, str(f.attempts)]
                for f in sorted(failures, key=lambda f: f.seq)
            ],
        ))
    else:
        parts.append("No quarantined jobs.")
    return "\n".join(parts) + "\n"


def _cmd_shootout(args: argparse.Namespace) -> int:
    from repro.experiments.shootout import shootout_specs

    protocols = (
        [p.strip() for p in args.protocols.split(",") if p.strip()]
        if args.protocols
        else None
    )
    specs = shootout_specs(
        protocols=protocols,
        seed=args.seed,
        quick=args.quick,
        replicas=args.replicas,
    )
    result = run_sweep(f"{args.name}_analyze", specs, sweep_options_from_args(args))
    keys = [
        (str(s.params_dict()["protocol"]), str(s.params_dict().get("name", "")))
        for s in specs
    ]
    rows = shootout_summaries(result.values, keys)
    out_dir = ensure_analysis_dir()
    csv_text = shootout_summary_csv_text(rows)
    md_text = shootout_summary_md_text(rows, args.replicas, result.failures)
    csv_path = _write_text(
        os.path.join(out_dir, f"{args.name}_summary.csv"), csv_text
    )
    md_path = _write_text(
        os.path.join(out_dir, f"{args.name}_summary.md"), md_text
    )
    failures_path = _write_text(
        os.path.join(out_dir, f"{args.name}_failures.csv"),
        failures_csv_text(result.failures),
    )
    print(md_text)
    print(f"summary CSV:  {csv_path}")
    print(f"summary MD:   {md_path}")
    print(f"failures CSV: {failures_path}")
    return 0


# ----------------------------------------------------------------------
# analyze log
# ----------------------------------------------------------------------


def read_run_log(path: str) -> List[Dict[str, Any]]:
    """All records of one sweep run log (JSONL, in file order)."""
    records = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def log_kind_rows(
    records: Sequence[Dict[str, Any]],
) -> List[Tuple[str, int, int, Optional[SummaryStats]]]:
    """Per-kind ``(kind, jobs, cache_hits, miss_wall_stats)`` rows.

    Wall-time statistics cover executed (cache-miss) jobs only — a hit's
    wall time measures the pickle loader, not the simulator.
    """
    jobs: Dict[str, int] = {}
    hits: Dict[str, int] = {}
    walls: Dict[str, List[float]] = {}
    for record in records:
        if record.get("event") != "job":
            continue
        kind = record.get("kind", "?")
        jobs[kind] = jobs.get(kind, 0) + 1
        if record.get("cache") == "hit":
            hits[kind] = hits.get(kind, 0) + 1
        else:
            walls.setdefault(kind, []).append(float(record.get("wall_s", 0.0)))
    rows: List[Tuple[str, int, int, Optional[SummaryStats]]] = []
    for kind in sorted(jobs):
        wall_values = walls.get(kind, [])
        rows.append((
            kind,
            jobs[kind],
            hits.get(kind, 0),
            summarize_values(wall_values) if wall_values else None,
        ))
    return rows


def log_resilience_counts(records: Sequence[Dict[str, Any]]) -> Dict[str, int]:
    """Counts of the PR 6 resilience events in one run log."""
    counts = {
        "job_retry": 0,
        "job_quarantined": 0,
        "worker_crash": 0,
        "sweep_interrupted": 0,
    }
    for record in records:
        event = record.get("event")
        if event in counts:
            counts[event] += 1
    return counts


def log_merged_metrics(records: Sequence[Dict[str, Any]]) -> Dict[str, Any]:
    """``merge_snapshots`` roll-up of every ``job_obs`` metrics snapshot."""
    total: Dict[str, Any] = {}
    for record in records:
        if record.get("event") == "job_obs" and "metrics" in record:
            merge_snapshots(total, record["metrics"])
    return total


def log_summary_csv_text(
    kind_rows: Sequence[Tuple[str, int, int, Optional[SummaryStats]]],
    resilience: Dict[str, int],
) -> str:
    """Per-kind roll-up CSV plus resilience counter rows."""
    header = (
        "kind,jobs,cache_hits,executed,"
        "wall_n,wall_mean_s,wall_median_s,wall_std_s,"
        "wall_t_lo_s,wall_t_hi_s,wall_boot_lo_s,wall_boot_hi_s"
    )
    lines = [header]
    for kind, jobs, hits, wall_stats in kind_rows:
        cells = [kind, str(jobs), str(hits), str(jobs - hits)]
        cells += _stat_csv_fields(wall_stats)
        lines.append(",".join(cells))
    for key in sorted(resilience):
        lines.append(f"#{key},{resilience[key]},,,,,,,,,,")
    return "\n".join(lines) + "\n"


def log_metrics_csv_text(metrics: Dict[str, Any]) -> str:
    """The merged metrics roll-up as flat CSV rows (repr floats)."""
    lines = ["section,metric,field,value"]
    for section, metric, stat_field, value in snapshot_rows(metrics):
        lines.append(f"{section},{metric},{stat_field},{value!r}")
    return "\n".join(lines) + "\n"


def log_summary_md_text(
    source: str,
    kind_rows: Sequence[Tuple[str, int, int, Optional[SummaryStats]]],
    resilience: Dict[str, int],
    metrics: Dict[str, Any],
) -> str:
    """The run-log roll-up as markdown."""
    parts = [
        "# Sweep run-log summary",
        "",
        f"Source: `{source}`",
        "",
        "## Jobs by kind",
        "",
        markdown_table(
            ["kind", "jobs", "cache hits", "executed",
             "wall mean (s)", "wall median (s)", "wall 95% CI (s)"],
            [
                [
                    kind, str(jobs), str(hits), str(jobs - hits),
                    _fmt(wall.mean) if wall else "n/a",
                    _fmt(wall.median) if wall else "n/a",
                    _ci_cell(wall) if wall else "n/a",
                ]
                for kind, jobs, hits, wall in kind_rows
            ],
        ),
        "",
        "## Resilience",
        "",
        markdown_table(
            ["event", "count"],
            [[key, str(resilience[key])] for key in sorted(resilience)],
        ),
        "",
        "## Metrics roll-up",
        "",
    ]
    rows = snapshot_rows(metrics)
    if rows:
        parts.append(markdown_table(
            ["section", "metric", "field", "value"],
            [[s, m, f, _fmt(v, digits=9)] for s, m, f, v in rows],
        ))
    else:
        parts.append("No `job_obs` metrics in this log (run with `--trace-dir`).")
    return "\n".join(parts) + "\n"


def _cmd_log(args: argparse.Namespace) -> int:
    records = read_run_log(args.log)
    name = args.name
    if name is None:
        name = os.path.splitext(os.path.basename(args.log))[0]
    kind_rows = log_kind_rows(records)
    resilience = log_resilience_counts(records)
    metrics = log_merged_metrics(records)
    out_dir = ensure_analysis_dir()
    # Basename only: the emitted bytes must not depend on where the log
    # happened to live (the golden-fixture tests byte-compare them).
    md_text = log_summary_md_text(
        os.path.basename(args.log), kind_rows, resilience, metrics
    )
    csv_path = _write_text(
        os.path.join(out_dir, f"{name}_log_summary.csv"),
        log_summary_csv_text(kind_rows, resilience),
    )
    metrics_path = _write_text(
        os.path.join(out_dir, f"{name}_log_metrics.csv"),
        log_metrics_csv_text(metrics),
    )
    md_path = _write_text(os.path.join(out_dir, f"{name}_log_summary.md"), md_text)
    print(md_text)
    print(f"summary CSV: {csv_path}")
    print(f"metrics CSV: {metrics_path}")
    print(f"summary MD:  {md_path}")
    return 0


# ----------------------------------------------------------------------
# analyze bench
# ----------------------------------------------------------------------


def _bench_label_key(label: str) -> Tuple[int, int, str]:
    """Sort key for BENCH labels: numeric labels first, in numeric
    order, then everything else lexicographically."""
    try:
        return (0, int(label), label)
    except ValueError:
        return (1, 0, label)


def discover_bench_files(root: str) -> List[str]:
    """The committed ``BENCH_*.json`` trajectory files under ``root``,
    in sorted-name order (the payload label decides the column order)."""
    names = sorted(
        name for name in os.listdir(root)
        if name.startswith("BENCH_") and name.endswith(".json")
    )
    return [os.path.join(root, name) for name in names]


def load_bench_trajectory(
    paths: Sequence[str],
) -> List[Tuple[str, str, Dict[str, Any]]]:
    """Load trajectory files as ``(label, basename, payload)`` triples,
    ordered by label (numeric labels numerically, then the rest)."""
    from repro.analysis.benchgate import load_bench_json

    loaded = []
    for path in paths:
        payload = load_bench_json(path)
        label = str(payload.get("label"))
        loaded.append((label, os.path.basename(path), payload))
    loaded.sort(key=lambda item: (_bench_label_key(item[0]), item[1]))
    return loaded


def bench_trend_md_text(
    trajectory: Sequence[Tuple[str, str, Dict[str, Any]]],
) -> str:
    """The benchmark-trajectory roll-up as byte-stable markdown.

    One wall-time table (benchmark x label, medians in ms) and one
    deterministic-work table (total counted ops per benchmark x label;
    blank before the counters existed) over every loaded BENCH file.
    """
    labels = [label for label, _, _ in trajectory]
    names = sorted(
        {
            name
            for _, _, payload in trajectory
            for name in payload["benchmarks"]
        }
    )

    def record(payload: Dict[str, Any], name: str) -> Optional[Dict[str, Any]]:
        entry = payload["benchmarks"].get(name)
        return entry if isinstance(entry, dict) else None

    wall_rows = []
    work_rows = []
    for name in names:
        wall_cells = [name]
        work_cells = [name]
        for _, _, payload in trajectory:
            entry = record(payload, name)
            if entry is None:
                wall_cells.append("-")
                work_cells.append("-")
                continue
            wall_cells.append(_fmt(float(entry["median_s"]) * 1e3))
            work = entry.get("work") or {}
            total_ops = sum(int(work[key]) for key in sorted(work))
            work_cells.append(str(total_ops) if work else "-")
        wall_rows.append(wall_cells)
        work_rows.append(work_cells)

    parts = [
        "# Benchmark trajectory",
        "",
        "Source files (ordered by label): "
        + ", ".join(f"`{base}`" for _, base, _ in trajectory),
        "",
        "## Wall-time medians (ms)",
        "",
        markdown_table(["benchmark"] + labels, wall_rows),
        "",
        "## Deterministic work (total counted ops)",
        "",
        markdown_table(["benchmark"] + labels, work_rows),
        "",
        "Work totals come from `repro.obs.counters` and are a pure "
        "function of the workload; a change between labels is a real "
        "workload shift, not machine noise (`repro bench-gate` compares "
        "the per-counter breakdown exactly).",
    ]
    return "\n".join(parts) + "\n"


def bench_trend_csv_text(
    trajectory: Sequence[Tuple[str, str, Dict[str, Any]]],
) -> str:
    """Flat CSV of the trajectory (repr floats, one row per benchmark
    per label): label, benchmark, median/mean/min, rounds, work total."""
    lines = ["label,benchmark,median_s,mean_s,min_s,rounds,work_total"]
    for label, _, payload in trajectory:
        table = payload["benchmarks"]
        for name in sorted(table):
            entry = table[name]
            work = entry.get("work") or {}
            total_ops = sum(int(work[key]) for key in sorted(work))
            lines.append(
                ",".join(
                    [
                        label,
                        name,
                        repr(float(entry["median_s"])),
                        repr(float(entry["mean_s"])),
                        repr(float(entry["min_s"])),
                        str(int(entry["rounds"])),
                        str(total_ops) if work else "",
                    ]
                )
            )
    return "\n".join(lines) + "\n"


def _cmd_bench(args: argparse.Namespace) -> int:
    paths = list(args.files)
    if not paths:
        paths = discover_bench_files(args.root)
    if not paths:
        print(f"no BENCH_*.json files found under {args.root!r}",
              file=sys.stderr)
        return 1
    trajectory = load_bench_trajectory(paths)
    out_dir = ensure_analysis_dir()
    md_text = bench_trend_md_text(trajectory)
    csv_path = _write_text(
        os.path.join(out_dir, f"{args.name}_trend.csv"),
        bench_trend_csv_text(trajectory),
    )
    md_path = _write_text(
        os.path.join(out_dir, f"{args.name}_trend.md"), md_text
    )
    print(md_text)
    print(f"trend CSV: {csv_path}")
    print(f"trend MD:  {md_path}")
    return 0


# ----------------------------------------------------------------------
# entry point
# ----------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    """The ``repro analyze`` parser (table1 / shootout / log / bench)."""
    from repro.experiments.table1 import _parse_m_values
    from repro.sweep import add_sweep_arguments

    parser = argparse.ArgumentParser(
        prog="repro analyze",
        description="Roll sweep output into summary tables with CIs.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_table1 = sub.add_parser(
        "table1", help="Table-1-with-CIs view over the m x replica grid"
    )
    p_table1.add_argument("--nodes", type=int, default=100)
    p_table1.add_argument("--seed", type=int, default=1)
    p_table1.add_argument(
        "-m", "--m-values", type=_parse_m_values, default=(1, 2, 3, 4, 5),
        dest="m_values", metavar="M1,M2,...",
        help="comma-separated m values (default 1,2,3,4,5)",
    )
    p_table1.add_argument(
        "--duration", type=float, default=60.0, metavar="S",
        help="scenario duration per cell in seconds",
    )
    p_table1.add_argument(
        "--replicas", type=int, default=3,
        help="replicas per m (default 3; more replicas, tighter CIs)",
    )
    p_table1.add_argument(
        "--name", default="table1",
        help="output stem under results/analysis/ (default table1)",
    )
    add_sweep_arguments(p_table1)
    p_table1.set_defaults(func=_cmd_table1)

    p_shootout = sub.add_parser(
        "shootout",
        help="per-(protocol, scenario) CIs over the multi-hop shootout grid",
    )
    p_shootout.add_argument("--seed", type=int, default=1)
    p_shootout.add_argument(
        "--quick", action="store_true",
        help="trim scenario durations to ~8 simulated seconds",
    )
    p_shootout.add_argument(
        "--replicas", type=int, default=3,
        help="seed replicas per cell (default 3; more replicas, tighter CIs)",
    )
    p_shootout.add_argument(
        "--protocols", default=None,
        help="comma-separated protocol subset (default: every registered one)",
    )
    p_shootout.add_argument(
        "--name", default="shootout",
        help="output stem under results/analysis/ (default shootout)",
    )
    add_sweep_arguments(p_shootout)
    p_shootout.set_defaults(func=_cmd_shootout)

    p_log = sub.add_parser(
        "log", help="roll one sweep run log (JSONL) into summary tables"
    )
    p_log.add_argument("log", help="run-log JSONL path (results/sweep_logs/...)")
    p_log.add_argument(
        "--name", default=None,
        help="output stem under results/analysis/ (default: log file stem)",
    )
    p_log.set_defaults(func=_cmd_log)

    p_bench = sub.add_parser(
        "bench",
        help="benchmark-trajectory trend table over committed BENCH_*.json",
    )
    p_bench.add_argument(
        "files", nargs="*",
        help="BENCH_*.json files to roll up (default: discover them "
        "under --root)",
    )
    p_bench.add_argument(
        "--root", default=".",
        help="directory scanned for BENCH_*.json when no files are "
        "given (default: the current directory)",
    )
    p_bench.add_argument(
        "--name", default="bench",
        help="output stem under results/analysis/ (default bench)",
    )
    p_bench.set_defaults(func=_cmd_bench)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the subcommand's exit code."""
    args = build_parser().parse_args(argv)
    return int(args.func(args))


if __name__ == "__main__":
    raise SystemExit(main())
