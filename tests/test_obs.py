"""Observability layer: tracing bus, metrics registry, profiler, schema.

The two load-bearing guarantees:

* the bus is a strict no-op when disabled (checked here at the unit
  level; ``test_differential_parity.py`` pins the end-to-end bit-parity);
* the JSONL record schema is *stable* — a golden fixture from a seeded
  5-node run is compared byte-for-byte, so any accidental field rename,
  reordering, or float-formatting change fails loudly and forces a
  conscious :data:`TRACE_SCHEMA_VERSION` decision.
"""

from __future__ import annotations

import ast
import json
from pathlib import Path

import pytest

import repro
from repro.network.ibss import ScenarioSpec, build_sstsp_network
from repro.obs import (
    EVENT_CATALOG,
    TRACE_SCHEMA_VERSION,
    HistogramSummary,
    MetricsRegistry,
    NULL_PROFILER,
    Profiler,
    RunObserver,
    current_observer,
    emit,
    merge_snapshots,
    observe_run,
    observe_value,
    read_events,
    tracing_enabled,
)

SRC_REPRO = Path(repro.__file__).parent
GOLDEN = Path(__file__).parent / "data" / "golden_trace_n5.jsonl"
#: The run the golden fixture was generated from (keep in sync with the
#: regeneration snippet in docs/observability.md).
GOLDEN_SPEC = ScenarioSpec(n=5, seed=7, duration_s=3.0)


class TestMetricsRegistry:
    def test_counters(self):
        reg = MetricsRegistry()
        reg.inc("beacons")
        reg.inc("beacons", by=2)
        reg.inc("beacons", node=3)
        assert reg.counter("beacons") == 3
        assert reg.counter("beacons", node=3) == 1
        assert reg.counter_total("beacons") == 4
        assert reg.counter("never") == 0

    def test_counter_total_does_not_mix_prefixes(self):
        reg = MetricsRegistry()
        reg.inc("events.beacon_tx", node=1)
        reg.inc("events.beacon_tx_retry", node=1)
        assert reg.counter_total("events.beacon_tx") == 1

    def test_gauges_last_write_wins(self):
        reg = MetricsRegistry()
        reg.set_gauge("ref", 3.0)
        reg.set_gauge("ref", 5.0)
        assert reg.snapshot()["gauges"] == {"ref": 5.0}

    def test_histogram_summary(self):
        summary = HistogramSummary()
        for value in (2.0, -1.0, 4.0):
            summary.observe(value)
        assert summary.to_dict() == {"count": 3, "sum": 5.0, "min": -1.0, "max": 4.0}

    def test_snapshot_is_sorted_and_jsonable(self):
        reg = MetricsRegistry()
        reg.inc("z"), reg.inc("a"), reg.observe("h", 1.0, node=2)
        snap = reg.snapshot()
        assert list(snap["counters"]) == ["a", "z"]
        assert "h|node=2" in snap["histograms"]
        json.dumps(snap)  # must not raise

    def test_len_counts_all_kinds(self):
        reg = MetricsRegistry()
        reg.inc("c"), reg.set_gauge("g", 1.0), reg.observe("h", 1.0)
        assert len(reg) == 3

    def test_merge_snapshots(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.inc("n", by=2), b.inc("n", by=3), b.inc("only_b")
        a.set_gauge("g", 1.0), b.set_gauge("g", 9.0)
        a.observe("h", 1.0), b.observe("h", 5.0)
        total: dict = {}
        merge_snapshots(total, a.snapshot())
        merge_snapshots(total, b.snapshot())
        assert total["counters"] == {"n": 5, "only_b": 1}
        assert total["gauges"] == {"g": 9.0}
        assert total["histograms"]["h"] == {
            "count": 2, "sum": 6.0, "min": 1.0, "max": 5.0,
        }


class TestEventBus:
    def test_disabled_bus_is_noop(self):
        assert not tracing_enabled()
        assert current_observer() is None
        emit("beacon_tx", t_us=1.0, node=0)  # must not raise, record nothing
        observe_value("x", 1.0)

    def test_observer_records_and_counts(self):
        with observe_run() as obs:
            assert tracing_enabled()
            assert current_observer() is obs
            emit("guard_reject", t_us=10.0, node=2, diff_us=99.0)
            emit("coarse_done", node=2, samples=4)  # no t_us
            observe_value("guard.reject_excess_us", 7.0, node=2)
        assert not tracing_enabled()
        assert obs.event_count == 2
        assert [e["event"] for e in obs.events] == ["guard_reject", "coarse_done"]
        assert obs.events[0]["seq"] == 1 and obs.events[1]["seq"] == 2
        assert "t_us" not in obs.events[1]
        assert obs.registry.counter("events.guard_reject", node=2) == 1
        hist = obs.registry.snapshot()["histograms"]
        assert hist["guard.reject_excess_us|node=2"]["count"] == 1

    def test_observer_restored_after_exception(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with pytest.raises(RuntimeError):
            with observe_run(str(path)):
                emit("beacon_tx", t_us=1.0, node=0)
                raise RuntimeError("boom")
        assert not tracing_enabled()
        # the file was closed and flushed despite the exception
        records = list(read_events(str(path)))
        assert [r["event"] for r in records] == ["trace_header", "beacon_tx"]

    def test_nested_observers_restore_previous(self):
        with observe_run() as outer:
            emit("beacon_tx", t_us=1.0, node=0)
            with observe_run() as inner:
                emit("beacon_rx", t_us=2.0, node=1)
            assert current_observer() is outer
            emit("beacon_tx", t_us=3.0, node=0)
        assert [e["event"] for e in outer.events] == ["beacon_tx", "beacon_tx"]
        assert [e["event"] for e in inner.events] == ["beacon_rx"]

    def test_file_streaming_defaults_to_not_keeping_events(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with observe_run(str(path)) as obs:
            emit("beacon_tx", t_us=1.0, node=0)
        assert obs.events == []  # streamed, not retained
        assert obs.event_count == 1
        with observe_run(str(tmp_path / "k.jsonl"), keep_events=True) as obs:
            emit("beacon_tx", t_us=1.0, node=0)
        assert len(obs.events) == 1

    def test_header_and_sorted_keys(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with observe_run(str(path)):
            emit("beacon_rx", t_us=2.0, node=1, src=0, period=3)
        lines = path.read_text().splitlines()
        header = json.loads(lines[0])
        assert header == {
            "event": "trace_header", "schema": TRACE_SCHEMA_VERSION, "seq": 0,
        }
        record = json.loads(lines[1])
        assert list(record) == sorted(record)

    def test_read_events_rejects_newer_schema(self, tmp_path):
        path = tmp_path / "future.jsonl"
        path.write_text(
            json.dumps({
                "event": "trace_header",
                "schema": TRACE_SCHEMA_VERSION + 1,
                "seq": 0,
            }) + "\n"
        )
        with pytest.raises(ValueError, match="newer than supported"):
            list(read_events(str(path)))

    def test_read_events_skips_blank_lines(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"event": "trace_header", "schema": 1, "seq": 0}\n\n')
        assert len(list(read_events(str(path)))) == 1

    def test_close_is_idempotent(self, tmp_path):
        obs = RunObserver(str(tmp_path / "t.jsonl"))
        obs.close()
        obs.close()


class TestProfiler:
    def test_sections_accumulate(self):
        profiler = Profiler()
        with profiler.section("cache"):
            pass
        with profiler.section("cache"):
            pass
        with profiler.section("engine"):
            pass
        assert profiler.counts() == {"cache": 2, "engine": 1}
        totals = profiler.totals()
        assert set(totals) == {"cache", "engine"}
        assert all(v >= 0.0 for v in totals.values())
        assert "cache" in profiler.format_summary()

    def test_null_profiler_records_nothing(self):
        with NULL_PROFILER.section("anything"):
            pass
        assert NULL_PROFILER.totals() == {}
        assert not NULL_PROFILER.enabled
        assert NULL_PROFILER.format_summary() == "no profiled sections"


class TestSchemaStability:
    def test_golden_fixture_byte_identical(self, tmp_path):
        """A seeded 5-node run traces to exactly the committed JSONL.

        If this fails because of an *intentional* schema change: decide
        whether the change is breaking (bump TRACE_SCHEMA_VERSION per
        docs/observability.md), then regenerate the fixture with the
        snippet in that doc.
        """
        path = tmp_path / "run.jsonl"
        with observe_run(str(path)):
            build_sstsp_network(GOLDEN_SPEC).run()
        assert path.read_bytes() == GOLDEN.read_bytes()

    def test_golden_fixture_parses_under_current_schema(self):
        records = list(read_events(str(GOLDEN)))
        assert records[0]["schema"] == TRACE_SCHEMA_VERSION
        body = records[1:]
        assert len(body) > 0
        assert [r["seq"] for r in body] == list(range(1, len(body) + 1))
        for record in body:
            assert record["event"] in EVENT_CATALOG

    def test_every_emitted_event_is_in_the_catalog(self):
        """Static sweep: every ``emit("<name>", ...)`` call site in the
        tree uses a catalogued event name, so the catalog really is the
        schema's event inventory."""
        emitted = set()
        for path in sorted(SRC_REPRO.rglob("*.py")):
            tree = ast.parse(path.read_text(encoding="utf-8"))
            for node in ast.walk(tree):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id == "emit"
                    and node.args
                    and isinstance(node.args[0], ast.Constant)
                    and isinstance(node.args[0].value, str)
                ):
                    emitted.add(node.args[0].value)
        assert emitted, "no emit() call sites found — instrumentation gone?"
        assert emitted <= set(EVENT_CATALOG), (
            f"uncatalogued events: {sorted(emitted - set(EVENT_CATALOG))}"
        )

    def test_catalog_subsystems_are_stable(self):
        assert EVENT_CATALOG["guard_reject"] == "core.guard"
        assert EVENT_CATALOG["mutesla_auth"] == "crypto.mutesla"
        assert TRACE_SCHEMA_VERSION == 1
