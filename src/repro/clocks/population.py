"""Vectorised view of every clock in a network.

Metric collection ("max clock difference between any two nodes, every BP")
and the fast-lane engines need to evaluate *all* clocks at one instant.
Looping over Python clock objects would dominate the runtime of large-N
sweeps; per the optimisation guides, the hot loop is vectorised instead:
:class:`ClockPopulation` keeps rates/offsets as numpy arrays and evaluates
``hw_i(t)`` for the whole network with one fused expression.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.clocks.oscillator import DEFAULT_DRIFT_PPM, HardwareClock, sample_rates


class ClockPopulation:
    """Rates and offsets of ``n`` hardware clocks as numpy arrays.

    Parameters
    ----------
    rates:
        Array of multiplicative oscillator rates (1.0 == true time).
    offsets:
        Array of local times at true time 0, in microseconds.
    """

    __slots__ = ("rates", "offsets")

    def __init__(self, rates: np.ndarray, offsets: np.ndarray) -> None:
        rates = np.asarray(rates, dtype=np.float64)
        offsets = np.asarray(offsets, dtype=np.float64)
        if rates.shape != offsets.shape or rates.ndim != 1:
            raise ValueError(
                f"rates and offsets must be equal-length 1-D arrays, got "
                f"{rates.shape} and {offsets.shape}"
            )
        if np.any(rates <= 0):
            raise ValueError("all clock rates must be > 0")
        self.rates = rates
        self.offsets = offsets

    @classmethod
    def sample(
        cls,
        n: int,
        rng: np.random.Generator,
        drift_ppm: float = DEFAULT_DRIFT_PPM,
        initial_offset_us: float = 0.0,
    ) -> "ClockPopulation":
        """Sample a population per the paper's section 5 setup.

        Rates are uniform in ``1 +- drift_ppm * 1e-6``; initial offsets are
        uniform in ``+- initial_offset_us`` (the Table 1 scenario uses
        112 us; the figure scenarios use 0).
        """
        rates = sample_rates(n, rng, drift_ppm)
        if initial_offset_us:
            offsets = rng.uniform(-initial_offset_us, initial_offset_us, size=n)
        else:
            offsets = np.zeros(n)
        return cls(rates, offsets)

    @classmethod
    def from_clocks(cls, clocks: Sequence[HardwareClock]) -> "ClockPopulation":
        """Build a population view over existing :class:`HardwareClock` objects."""
        rates = np.array([c.rate for c in clocks], dtype=np.float64)
        offsets = np.array([c.initial_offset for c in clocks], dtype=np.float64)
        return cls(rates, offsets)

    def __len__(self) -> int:
        return self.rates.shape[0]

    def read_all(self, true_time: float, out: Optional[np.ndarray] = None) -> np.ndarray:
        """Hardware time of every clock at ``true_time``.

        ``out`` may be supplied to reuse a buffer across the per-BP metric
        loop (in-place evaluation, no allocation).
        """
        if out is None:
            out = np.empty_like(self.rates)
        np.multiply(self.rates, true_time, out=out)
        out += self.offsets
        return out

    def clock(self, index: int) -> HardwareClock:
        """Materialise node ``index`` as a :class:`HardwareClock` object."""
        return HardwareClock(
            rate=float(self.rates[index]),
            initial_offset=float(self.offsets[index]),
        )

    def fastest(self) -> int:
        """Index of the fastest oscillator (the node TSF's pathology centres on)."""
        return int(np.argmax(self.rates))

    def max_pairwise_spread(self, true_time: float) -> float:
        """``max_i hw_i(t) - min_i hw_i(t)`` - the unsynchronized drift span."""
        values = self.read_all(true_time)
        return float(values.max() - values.min())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ClockPopulation(n={len(self)})"
