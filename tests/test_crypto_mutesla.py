"""Unit tests for the uTESLA broadcast authentication scheme."""

import pytest

from repro.crypto.hashchain import DenseHashChain
from repro.crypto.mutesla import (
    IntervalSchedule,
    MuTeslaReceiver,
    MuTeslaSender,
    SecuredPacket,
)

SEED = b"\x33" * 16
N = 64
BP = 100.0


@pytest.fixture
def chain():
    return DenseHashChain(SEED, N)


@pytest.fixture
def sched():
    return IntervalSchedule(t0_us=0.0, interval_us=BP, length=N)


@pytest.fixture
def sender(chain, sched):
    return MuTeslaSender(1, chain, sched)


@pytest.fixture
def receiver(chain, sched):
    r = MuTeslaReceiver(sched)
    r.register_sender(1, chain.anchor, N)
    return r


class TestIntervalSchedule:
    def test_interval_of_rounds_to_nearest(self, sched):
        assert sched.interval_of(100.0) == 1
        assert sched.interval_of(149.0) == 1
        assert sched.interval_of(151.0) == 2
        assert sched.interval_of(100.0 * 5 + 3) == 5

    def test_nominal_time(self, sched):
        assert sched.nominal_time(7) == 700.0

    def test_contains(self, sched):
        assert sched.contains(1) and sched.contains(N)
        assert not sched.contains(0) and not sched.contains(N + 1)

    def test_validation(self):
        with pytest.raises(ValueError):
            IntervalSchedule(0.0, 0.0, 10)
        with pytest.raises(ValueError):
            IntervalSchedule(0.0, 1.0, 0)


class TestRoundTrip:
    def test_delayed_authentication(self, sender, receiver):
        p1 = sender.secure(b"m1", 1)
        assert receiver.receive(1, p1, local_time_us=1 * BP) == []
        released = receiver.receive(1, sender.secure(b"m2", 2), local_time_us=2 * BP)
        assert len(released) == 1
        assert released[0].payload == b"m1"
        assert released[0].interval == 1
        assert released[0].sender == 1

    def test_stream_releases_every_previous(self, sender, receiver):
        released = []
        for j in range(1, 20):
            released += receiver.receive(1, sender.secure(b"m%d" % j, j), j * BP)
        assert [m.interval for m in released] == list(range(1, 19))

    def test_lost_packet_recovered_by_key_derivation(self, sender, receiver):
        receiver.receive(1, sender.secure(b"m1", 1), 1 * BP)
        # packet 2 lost; packet 3 discloses K_2, from which K_1 derives
        released = receiver.receive(1, sender.secure(b"m3", 3), 3 * BP)
        assert [m.interval for m in released] == [1]

    def test_unknown_sender_ignored(self, sender, sched):
        fresh = MuTeslaReceiver(sched)
        assert fresh.receive(1, sender.secure(b"m", 1), 1 * BP) == []

    def test_sender_chain_length_must_match_schedule(self, chain):
        bad = IntervalSchedule(0.0, BP, N + 1)
        with pytest.raises(ValueError):
            MuTeslaSender(1, chain, bad)

    def test_secure_interval_bounds(self, sender):
        with pytest.raises(ValueError):
            sender.secure(b"m", 0)
        with pytest.raises(ValueError):
            sender.secure(b"m", N + 1)


class TestSecurity:
    def test_stale_interval_rejected(self, sender, receiver):
        packet = sender.secure(b"m1", 1)
        # delivered two intervals late: safety condition fails
        assert receiver.receive(1, packet, local_time_us=3 * BP) == []
        assert receiver.sender_stats(1).rejected_unsafe_interval == 1

    def test_future_interval_rejected(self, sender, receiver):
        packet = sender.secure(b"m5", 5)
        assert receiver.receive(1, packet, local_time_us=1 * BP) == []
        assert receiver.sender_stats(1).rejected_unsafe_interval == 1

    def test_forged_key_rejected(self, sender, receiver):
        good = sender.secure(b"m1", 1)
        forged = SecuredPacket(good.payload, good.interval, good.mac_tag, b"\x00" * 16)
        assert receiver.receive(1, forged, 1 * BP) == []
        assert receiver.sender_stats(1).rejected_bad_key == 1

    def test_tampered_payload_fails_mac(self, sender, receiver):
        p1 = sender.secure(b"m1", 1)
        tampered = SecuredPacket(b"EVIL", p1.interval, p1.mac_tag, p1.disclosed_key)
        receiver.receive(1, tampered, 1 * BP)
        receiver.receive(1, sender.secure(b"m2", 2), 2 * BP)
        assert receiver.sender_stats(1).rejected_bad_mac == 1
        assert receiver.sender_stats(1).authenticated == 0

    def test_tampered_tag_fails_mac(self, sender, receiver):
        p1 = sender.secure(b"m1", 1)
        tampered = SecuredPacket(p1.payload, p1.interval, b"\x00" * 16, p1.disclosed_key)
        receiver.receive(1, tampered, 1 * BP)
        released = receiver.receive(1, sender.secure(b"m2", 2), 2 * BP)
        assert released == []
        assert receiver.sender_stats(1).rejected_bad_mac == 1

    def test_key_verification_cache_used(self, sender, receiver):
        for j in range(1, 6):
            receiver.receive(1, sender.secure(b"m", j), j * BP)
        # first verification walks to the anchor; later ones cost ~1 hash
        stats = receiver.sender_stats(1)
        assert stats.hash_operations < N + 10

    def test_conflicting_anchor_registration_rejected(self, receiver):
        with pytest.raises(ValueError):
            receiver.register_sender(1, b"\x00" * 16, N)

    def test_pending_buffer_bounded(self, sender, receiver):
        # intervals received but never released accumulate at most MAX_PENDING
        for j in range(1, 10):
            packet = sender.secure(b"m%d" % j, j)
            # sabotage the disclosed key so nothing ever releases/verifies
            bad = SecuredPacket(packet.payload, packet.interval, packet.mac_tag, b"\x01" * 16)
            receiver.receive(1, bad, j * BP)
        assert receiver.sender_stats(1).rejected_bad_key == 9


class TestReplayDefence:
    def test_replayed_packet_rejected_next_interval(self, sender, receiver):
        p1 = sender.secure(b"m1", 1)
        receiver.receive(1, p1, 1 * BP)
        receiver.receive(1, sender.secure(b"m2", 2), 2 * BP)
        # attacker replays interval-1 packet during interval 3
        assert receiver.receive(1, p1, 3 * BP) == []
        assert receiver.sender_stats(1).rejected_unsafe_interval == 1
