"""The sweep executor: cache check → fan-out → ordered results.

``run_sweep`` takes a list of frozen :class:`~repro.sweep.spec.JobSpec`\\ s
and returns their results *in spec order*, however the work was
scheduled. ``workers == 1`` is the degenerate case — a plain serial loop
in the calling process, no pool, no pickling round-trip — so serial and
parallel execution share every code path that can affect a result, and
outputs stay byte-identical across worker counts (every job re-seeds from
its own spec; nothing reads global RNG state).

Progress and per-job timing stream to stderr; the same records go to a
machine-readable JSONL run log when a path is configured (the experiment
CLIs default one under ``results/sweep_logs/``).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Sequence, TextIO

from repro.obs.events import observe_run
from repro.obs.profile import NULL_PROFILER, Profiler
from repro.obs.registry import merge_snapshots
from repro.sweep.cache import DEFAULT_CACHE_DIR, ResultCache
from repro.sweep.jobs import execute_job
from repro.sweep.spec import JobSpec


@dataclass(frozen=True)
class SweepOptions:
    """How a sweep executes (not *what* it computes — that is the specs).

    Attributes
    ----------
    workers:
        Process count; 1 runs the jobs serially in-process.
    cache_dir:
        Result-cache root, or None to disable caching (the library
        default: plain ``run()`` calls stay side-effect free unless a
        caller opts in).
    log_path:
        JSONL run-log destination, or None for no log file.
    progress:
        Stream per-job progress/ETA lines to stderr.
    trace_dir:
        Directory receiving one event-trace JSONL per *executed* job
        (``<kind>-<hash>.jsonl``), or None for no tracing. Tracing is
        pure observation — results and cache keys are identical with it
        on or off — so cache *hits* produce no trace (the job never
        ran); use ``--no-cache`` or a fresh cache to trace everything.
    profile:
        Attribute sweep wall time to phases (cache / engine / log) with
        wall-clock section timers; totals go to the run log and, with
        ``progress``, to stderr.
    """

    workers: int = 1
    cache_dir: Optional[str] = None
    log_path: Optional[str] = None
    progress: bool = False
    trace_dir: Optional[str] = None
    profile: bool = False

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("workers must be >= 1")


@dataclass
class SweepStats:
    """Aggregate accounting of one ``run_sweep`` call."""

    jobs: int = 0
    cache_hits: int = 0
    executed: int = 0
    wall_s: float = 0.0
    job_wall_s: List[float] = field(default_factory=list)
    log_path: Optional[str] = None


@dataclass
class SweepResult:
    """Ordered results plus accounting."""

    specs: List[JobSpec]
    values: List[Any]
    stats: SweepStats

    def __iter__(self) -> Iterator[Any]:
        return iter(self.values)


def add_sweep_arguments(parser: argparse.ArgumentParser) -> None:
    """Install the shared ``--workers/--cache-dir/--no-cache`` flags."""
    group = parser.add_argument_group("sweep execution")
    group.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="worker processes for the scenario sweep (1 = serial; "
        "results are byte-identical at any worker count)",
    )
    group.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="result-cache directory (default: $SSTSP_SWEEP_CACHE or "
        f"{DEFAULT_CACHE_DIR!r})",
    )
    group.add_argument(
        "--no-cache", action="store_true",
        help="disable the result cache for this run",
    )
    group.add_argument(
        "--sweep-log", default=None, metavar="PATH",
        help="JSONL run-log path (default: results/sweep_logs/<name>.jsonl)",
    )
    group.add_argument(
        "--trace-dir", default=None, metavar="DIR",
        help="write one event-trace JSONL per executed job into DIR "
        "(cache hits never ran, so they produce no trace)",
    )
    group.add_argument(
        "--profile", action="store_true",
        help="attribute sweep wall time to phases (cache/engine/log)",
    )


def sweep_options_from_args(args: argparse.Namespace) -> SweepOptions:
    """Build :class:`SweepOptions` from parsed CLI arguments.

    CLI runs cache by default (reruns of paper experiments are the hot
    use case); ``--no-cache`` opts out.
    """
    if args.no_cache:
        cache_dir = None
    else:
        cache_dir = (
            args.cache_dir
            or os.environ.get("SSTSP_SWEEP_CACHE")
            or DEFAULT_CACHE_DIR
        )
    return SweepOptions(
        workers=args.workers,
        cache_dir=cache_dir,
        log_path=args.sweep_log,
        progress=True,
        trace_dir=getattr(args, "trace_dir", None),
        profile=getattr(args, "profile", False),
    )


def _default_log_path(name: str) -> str:
    root = os.environ.get("SSTSP_RESULTS_DIR", "results")
    return os.path.join(root, "sweep_logs", f"{name}.jsonl")


class _RunLog:
    """Line-per-event JSONL writer (no-op when path is None).

    A context manager: ``run_sweep`` holds the whole execution inside a
    ``with`` block, so the log flushes and closes even when a worker
    raises — no leaked half-written JSONL on failures.
    """

    def __init__(self, path: Optional[str]) -> None:
        self.path = path
        self._fh: Optional[TextIO] = None
        if path is not None:
            os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
            self._fh = open(path, "w", encoding="utf-8")

    def write(self, record: Dict[str, Any]) -> None:
        if self._fh is not None:
            self._fh.write(json.dumps(record, sort_keys=True) + "\n")
            self._fh.flush()

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "_RunLog":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


def _job_trace_path(trace_dir: str, spec: JobSpec) -> str:
    """Deterministic per-job trace filename inside ``trace_dir``."""
    return os.path.join(trace_dir, f"{spec.kind}-{spec.spec_hash()[:16]}.jsonl")


def _execute_observed(spec: JobSpec, trace_dir: str) -> tuple:
    """Run one job with the tracing bus on; module-level so the pool can
    pickle it. Returns ``(value, obs_payload)`` where the payload carries
    the trace path and the job's metrics snapshot back to the parent."""
    path = _job_trace_path(trace_dir, spec)
    with observe_run(path, keep_events=False) as observer:
        value = execute_job(spec)
    payload = {
        "trace_path": path,
        "events": observer.event_count,
        "metrics": observer.registry.snapshot(),
    }
    return value, payload


def _progress_line(
    name: str, done: int, total: int, hits: int,
    elapsed: float, miss_walls: List[float], remaining: int, workers: int,
) -> str:
    if miss_walls and remaining:
        eta = sum(miss_walls) / len(miss_walls) * remaining / workers
        eta_txt = f" eta {eta:.1f}s"
    else:
        eta_txt = ""
    return (
        f"[sweep {name}] {done}/{total} jobs ({hits} cached) "
        f"elapsed {elapsed:.1f}s{eta_txt}"
    )


def run_sweep(
    name: str,
    specs: Sequence[JobSpec],
    options: Optional[SweepOptions] = None,
) -> SweepResult:
    """Execute ``specs``, returning results in spec order.

    Cached results are fetched first (in the calling process); the
    remaining jobs run serially (``workers == 1``) or on a
    ``ProcessPoolExecutor``. Fresh results are written back to the cache
    as they land. A failing job raises — with the job key attached — after
    the pool is drained.
    """
    options = options or SweepOptions()
    specs = list(specs)
    stats = SweepStats(jobs=len(specs))
    cache = ResultCache(options.cache_dir) if options.cache_dir else None
    trace_dir = options.trace_dir
    if trace_dir is not None:
        os.makedirs(trace_dir, exist_ok=True)
    profiler = Profiler() if options.profile else NULL_PROFILER
    log_path = options.log_path
    if log_path is None and options.progress and specs:
        log_path = _default_log_path(name)
    err = sys.stderr
    start = time.perf_counter()
    values: List[Any] = [None] * len(specs)
    pending: List[int] = []
    done = 0
    miss_walls: List[float] = []
    metrics_total: Dict[str, Any] = {}

    with _RunLog(log_path if specs else None) as log:
        stats.log_path = log.path
        log.write({
            "event": "sweep_start",
            "sweep": name,
            "jobs": len(specs),
            "workers": options.workers,
            "cache_dir": options.cache_dir,
            "cache_salt": cache.salt if cache else None,
            "trace_dir": trace_dir,
            "time": time.time(),
        })

        def log_job(index: int, source: str, wall_s: float) -> None:
            spec = specs[index]
            with profiler.section("log"):
                log.write({
                    "event": "job",
                    "sweep": name,
                    "seq": index,
                    "kind": spec.kind,
                    "hash": spec.spec_hash()[:16],
                    "params": spec.params_dict(),
                    "cache": source,
                    "wall_s": round(wall_s, 6),
                })

        def log_job_obs(index: int, payload: Dict[str, Any]) -> None:
            """Per-job observability record + roll-up into the sweep
            aggregate (counters/histograms add, gauges last-write)."""
            merge_snapshots(metrics_total, payload["metrics"])
            spec = specs[index]
            with profiler.section("log"):
                log.write({
                    "event": "job_obs",
                    "sweep": name,
                    "seq": index,
                    "kind": spec.kind,
                    "hash": spec.spec_hash()[:16],
                    "trace_path": payload["trace_path"],
                    "events": payload["events"],
                    "metrics": payload["metrics"],
                })

        # Phase 1: satisfy what we can from the cache.
        for index, spec in enumerate(specs):
            if cache is not None:
                t0 = time.perf_counter()
                with profiler.section("cache"):
                    hit, value = cache.get(spec)
                if hit:
                    values[index] = value
                    stats.cache_hits += 1
                    done += 1
                    log_job(index, "hit", time.perf_counter() - t0)
                    continue
            pending.append(index)

        if options.progress and stats.cache_hits:
            print(
                _progress_line(
                    name, done, len(specs), stats.cache_hits,
                    time.perf_counter() - start, miss_walls,
                    len(pending), options.workers,
                ),
                file=err,
            )

        def finish(index: int, value: Any, wall_s: float) -> None:
            nonlocal done
            values[index] = value
            stats.executed += 1
            stats.job_wall_s.append(wall_s)
            miss_walls.append(wall_s)
            done += 1
            if cache is not None:
                with profiler.section("cache"):
                    cache.put(specs[index], value)
            log_job(index, "miss", wall_s)
            if options.progress:
                print(
                    _progress_line(
                        name, done, len(specs), stats.cache_hits,
                        time.perf_counter() - start, miss_walls,
                        len(specs) - done, options.workers,
                    ),
                    file=err,
                )

        def run_one(index: int) -> Any:
            """Execute one job in-process, traced when configured."""
            if trace_dir is None:
                return execute_job(specs[index])
            value, payload = _execute_observed(specs[index], trace_dir)
            log_job_obs(index, payload)
            return value

        # Phase 2: execute the misses.
        try:
            if options.workers == 1 or len(pending) <= 1:
                for index in pending:
                    t0 = time.perf_counter()
                    try:
                        with profiler.section("engine"):
                            value = run_one(index)
                    except Exception as exc:
                        raise RuntimeError(
                            f"sweep job failed: {specs[index].job_key}"
                        ) from exc
                    finish(index, value, time.perf_counter() - t0)
            else:
                with ProcessPoolExecutor(max_workers=options.workers) as pool:
                    t0 = time.perf_counter()
                    if trace_dir is None:
                        futures = {
                            pool.submit(execute_job, specs[index]): index
                            for index in pending
                        }
                    else:
                        futures = {
                            pool.submit(
                                _execute_observed, specs[index], trace_dir
                            ): index
                            for index in pending
                        }
                    not_done = set(futures)
                    while not_done:
                        with profiler.section("engine"):
                            finished, not_done = wait(
                                not_done, return_when=FIRST_COMPLETED
                            )
                        for future in finished:
                            index = futures[future]
                            try:
                                value = future.result()
                            except Exception as exc:
                                raise RuntimeError(
                                    f"sweep job failed: {specs[index].job_key}"
                                ) from exc
                            if trace_dir is not None:
                                value, payload = value
                                log_job_obs(index, payload)
                            # per-job wall time is not observable from the
                            # parent without instrumenting the worker; the
                            # batch-averaged value keeps the ETA honest.
                            completed = len(miss_walls) + 1
                            finish(
                                index, value,
                                (time.perf_counter() - t0) / completed,
                            )
        finally:
            stats.wall_s = time.perf_counter() - start
            end_record: Dict[str, Any] = {
                "event": "sweep_end",
                "sweep": name,
                "jobs": len(specs),
                "cache_hits": stats.cache_hits,
                "executed": stats.executed,
                "wall_s": round(stats.wall_s, 6),
                "time": time.time(),
            }
            if trace_dir is not None:
                end_record["metrics"] = metrics_total
            if profiler.enabled:
                end_record["profile"] = profiler.totals()
            log.write(end_record)
    if options.progress:
        print(
            f"[sweep {name}] done: {len(specs)} jobs "
            f"({stats.cache_hits} cached, {stats.executed} executed) "
            f"in {stats.wall_s:.2f}s"
            + (f" (log: {stats.log_path})" if stats.log_path else ""),
            file=err,
        )
        if profiler.enabled:
            print(
                f"[sweep {name}] profile: "
                f"{profiler.format_summary(stats.wall_s)}",
                file=err,
            )
    return SweepResult(specs=specs, values=values, stats=stats)
