"""Radio topologies for the multi-hop extension.

A :class:`Topology` is an undirected reachability graph: an edge means
the two stations decode each other's transmissions. Builders cover the
shapes multi-hop sync papers evaluate on: random unit-disk deployments,
regular grids, and worst-case chains.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

import networkx as nx
import numpy as np


class Topology:
    """Undirected connectivity graph over station ids ``0..n-1``."""

    def __init__(self, graph: nx.Graph) -> None:
        expected = set(range(graph.number_of_nodes()))
        if set(graph.nodes) != expected:
            raise ValueError("topology nodes must be 0..n-1")
        self._graph = graph
        self._neighbors: List[Tuple[int, ...]] = [
            tuple(sorted(graph.neighbors(i))) for i in range(len(expected))
        ]

    # ------------------------------------------------------------------
    # Builders
    # ------------------------------------------------------------------

    @classmethod
    def full_mesh(cls, n: int) -> "Topology":
        """Single-hop IBSS as a degenerate case (every pair connected)."""
        return cls(nx.complete_graph(n))

    @classmethod
    def chain(cls, n: int) -> "Topology":
        """Worst-case diameter: a line of ``n`` stations."""
        return cls(nx.path_graph(n))

    @classmethod
    def grid(cls, rows: int, cols: int, diagonal: bool = False) -> "Topology":
        """``rows x cols`` lattice; ``diagonal`` adds 8-connectivity."""
        graph = nx.Graph()
        def idx(r, c):
            return r * cols + c
        for r in range(rows):
            for c in range(cols):
                graph.add_node(idx(r, c))
        for r in range(rows):
            for c in range(cols):
                if c + 1 < cols:
                    graph.add_edge(idx(r, c), idx(r, c + 1))
                if r + 1 < rows:
                    graph.add_edge(idx(r, c), idx(r + 1, c))
                if diagonal and r + 1 < rows and c + 1 < cols:
                    graph.add_edge(idx(r, c), idx(r + 1, c + 1))
                if diagonal and r + 1 < rows and c - 1 >= 0:
                    graph.add_edge(idx(r, c), idx(r + 1, c - 1))
        return cls(graph)

    @classmethod
    def unit_disk(
        cls,
        n: int,
        rng: np.random.Generator,
        area_m: float = 1_000.0,
        radius_m: float = 250.0,
        require_connected: bool = True,
        max_attempts: int = 50,
    ) -> "Topology":
        """Random deployment: ``n`` stations uniform in an ``area_m``
        square, connected when within ``radius_m``. Redraws until the
        graph is connected (if required)."""
        for _ in range(max_attempts):
            positions = rng.uniform(0.0, area_m, size=(n, 2))
            graph = nx.Graph()
            graph.add_nodes_from(range(n))
            for i in range(n):
                deltas = positions[i + 1 :] - positions[i]
                dists = np.hypot(deltas[:, 0], deltas[:, 1])
                for j in np.flatnonzero(dists <= radius_m):
                    graph.add_edge(i, int(i + 1 + j))
            if not require_connected or nx.is_connected(graph):
                topology = cls(graph)
                topology.positions = positions  # type: ignore[attr-defined]
                return topology
        raise RuntimeError(
            f"no connected unit-disk deployment found in {max_attempts} draws"
        )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def n(self) -> int:
        return len(self._neighbors)

    def neighbors(self, node: int) -> Tuple[int, ...]:
        """Stations within radio range of ``node`` (sorted)."""
        return self._neighbors[node]

    def degree(self, node: int) -> int:
        """Number of radio neighbours of ``node``."""
        return len(self._neighbors[node])

    def is_complete(self) -> bool:
        """Whether every pair of stations is connected (the degenerate
        single-hop case: the multi-hop runner then delegates to the
        reference IBSS lane)."""
        return all(
            len(self._neighbors[i]) == self.n - 1 for i in range(self.n)
        )

    def is_connected(self) -> bool:
        """Whether every station can reach every other."""
        return nx.is_connected(self._graph)

    def diameter(self) -> int:
        """Longest shortest-path hop count in the graph."""
        return nx.diameter(self._graph)

    def hop_distances(self, root: int) -> Dict[int, int]:
        """BFS hop distance from ``root`` to every reachable station."""
        return dict(nx.single_source_shortest_path_length(self._graph, root))

    def two_hop_neighbors(self, node: int) -> Tuple[int, ...]:
        """Stations within two hops (excluding ``node``): the interference
        domain for hidden-terminal scheduling. Cached per topology."""
        cache = getattr(self, "_two_hop_cache", None)
        if cache is None:
            cache = {}
            self._two_hop_cache = cache  # type: ignore[attr-defined]
        cached = cache.get(node)
        if cached is None:
            reach = set(self._neighbors[node])
            for neighbor in self._neighbors[node]:
                reach.update(self._neighbors[neighbor])
            reach.discard(node)
            cached = tuple(sorted(reach))
            cache[node] = cached
        return cached

    def edges(self) -> Iterable[Tuple[int, int]]:
        """Iterate over the radio links."""
        return self._graph.edges()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Topology(n={self.n}, edges={self._graph.number_of_edges()}, "
            f"connected={self.is_connected()})"
        )
