"""SSTSP reproduction: secure & scalable time synchronization for 802.11 IBSS.

This package reproduces Chen & Leneutre, *A Secure and Scalable Time
Synchronization Protocol in IEEE 802.11 Ad Hoc Networks* (ICPP 2006).

Layout
------
``repro.sim``
    Discrete-event simulation kernel (event queue, seeded RNG streams).
``repro.clocks``
    Hardware oscillator and piecewise-linear adjusted clocks.
``repro.phy`` / ``repro.mac``
    OFDM PHY timing model, broadcast channel, 802.11 beacon-window MAC.
``repro.crypto``
    One-way hash chains, Jakobsson fractal traversal, the uTESLA broadcast
    authentication scheme.
``repro.security``
    Attacker models and outlier filters (threshold, GESD).
``repro.protocols``
    Baseline synchronization protocols: TSF, ATSP, TATSP, SATSF, Rentel-Kunz.
``repro.core``
    SSTSP itself: coarse phase, reference election, (k, b) clock slewing,
    uTESLA beacon pipeline, guard-time checks.
``repro.network``
    IBSS harness wiring nodes, churn and metric collection together.
``repro.fastlane``
    Vectorised numpy engines for large-N parameter sweeps.
``repro.analysis``
    Metrics, convergence bounds (Lemmas 1-2), overhead models.
``repro.experiments``
    One module per paper figure/table (Fig. 1-4, Table 1).
"""

from repro._version import __version__

# Convenience re-exports: the surface a downstream user touches first.
from repro.core.config import SstspConfig
from repro.network.ibss import AttackerSpec, ScenarioSpec, build_network
from repro.fastlane import run_sstsp_vectorized, run_tsf_vectorized

__all__ = [
    "__version__",
    "ScenarioSpec",
    "AttackerSpec",
    "SstspConfig",
    "build_network",
    "run_sstsp_vectorized",
    "run_tsf_vectorized",
]
