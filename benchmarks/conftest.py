"""Shared helpers for the benchmark suite.

Each ``bench_*`` module regenerates one paper table/figure (or an
ablation) at a reduced-but-shape-preserving scale, asserts the paper's
qualitative claim, attaches the reproduced rows to the benchmark record
via ``benchmark.extra_info``, and prints them so that
``pytest benchmarks/ --benchmark-only -s`` shows the same rows/series the
paper reports. The full-scale reproductions live in
``repro.experiments`` (``sstsp-experiment <name>``).
"""

from __future__ import annotations

import os
import sys

import pytest

from repro.sweep import SweepOptions


def pytest_addoption(parser):
    """The orchestrator knobs, shared by every sweep-driven bench.

    Mirrors the experiment CLIs' ``--workers`` / ``--cache-dir``
    (prefixed to avoid clashing with pytest's own options).
    """
    parser.addoption(
        "--sweep-workers",
        type=int,
        default=None,
        help="worker processes for sweep-driven benches "
        "(default: SSTSP_BENCH_WORKERS or 1)",
    )
    parser.addoption(
        "--sweep-cache-dir",
        default=None,
        help="content-addressed result cache directory (default: off — a "
        "benchmark that replays pickles measures the cache, not the "
        "simulator)",
    )


@pytest.fixture
def sweep_options(request) -> SweepOptions:
    """How bench modules drive the sweep orchestrator.

    Caching stays off unless ``--sweep-cache-dir`` opts in.
    ``--sweep-workers`` (or the ``SSTSP_BENCH_WORKERS`` env) opts into
    parallel fan-out (results are identical at any worker count, only
    the wall clock moves, so the recorded rows stay comparable across
    machines).
    """
    workers = request.config.getoption("--sweep-workers")
    if workers is None:
        workers = int(os.environ.get("SSTSP_BENCH_WORKERS", "1"))
    return SweepOptions(
        workers=workers,
        cache_dir=request.config.getoption("--sweep-cache-dir"),
    )


def paper_rows(benchmark, name: str, rows) -> None:
    """Attach reproduced rows to the benchmark record and print them."""
    rows = list(rows)
    benchmark.extra_info[name] = rows
    print(f"\n--- {name} ---", file=sys.stderr)
    for row in rows:
        print("   ", row, file=sys.stderr)
