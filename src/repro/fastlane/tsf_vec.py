"""Vectorised TSF engine.

Per beacon period, one numpy pass over all stations computes each
contender's scheduled transmission instant on the true-time axis (its own
TBTT plus its backoff draw, through its own skewed timer); the shared
carrier-sense cascade resolves the window exactly as the reference lane
does; the winner's timestamp is then broadcast and the TSF adoption rule
(set timer forward iff the received time is later) applies as one masked
array update.

The cascade with skew-exact times matters: the fastest station's timer
head start is precisely the self-correcting mechanism that bounds TSF
desynchronisation at small N, and growing collision chains are the
pathology that unbounds it at large N (Fig. 1). A slot-quantised
"unique minimum" rule reproduces neither.

Supports the full section 5 scenario: churn and the Fig. 3 channel
attacker (who transmits with a lead and a fast-paced TBTT, so it keeps
the channel for the whole window).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from repro.analysis.metrics import SyncTrace, TraceRecorder
from repro.fastlane.common import ChurnDriver, VectorState, resolve_window
from repro.network.churn import ChurnSchedule
from repro.network.ibss import ScenarioSpec
from repro.obs.counters import count, work_lane
from repro.phy.params import TSF_BEACON_AIRTIME_SLOTS
from repro.security.attacks import AttackWindow


@dataclass
class VectorTsfResult:
    """Output of one vectorised TSF run."""

    trace: SyncTrace
    successful_beacons: int
    collisions: int
    events: List[str] = field(default_factory=list)


def run_tsf_vectorized(
    spec: ScenarioSpec, w: int = 30, keep_values: bool = False
) -> VectorTsfResult:
    """Run the spec's TSF scenario on the vector engine.

    ``keep_values`` retains the per-node clock matrix in the trace (used
    by the application-layer evaluations in :mod:`repro.apps`).
    """
    with work_lane("fastlane/tsf"):
        return _run_tsf_vectorized(spec, w, keep_values)


def _run_tsf_vectorized(
    spec: ScenarioSpec, w: int, keep_values: bool
) -> VectorTsfResult:
    has_attacker = spec.attacker is not None
    state = VectorState.from_spec(spec, extra_nodes=1 if has_attacker else 0)
    n = state.n
    attacker_idx = n - 1 if has_attacker else None
    window = (
        AttackWindow.from_seconds(
            spec.attacker.start_s, spec.attacker.end_s, spec.beacon_period_us
        )
        if has_attacker
        else None
    )

    bp = spec.beacon_period_us
    slot_time = spec.phy.slot_time_us
    airtime = TSF_BEACON_AIRTIME_SLOTS * slot_time
    latency = airtime + spec.phy.propagation_delay_us
    per = spec.phy.packet_error_rate
    jitter = spec.phy.timestamp_jitter_us

    # TSF timer of node i at true time t: rates[i] * t + offsets[i] + adj[i]
    adj = np.zeros(n)
    slots_rng = state.rngs.get("slots")
    channel_rng = state.rngs.get("channel")
    churn = ChurnDriver(
        ChurnSchedule.paper_default(
            list(range(spec.n)), spec.periods, state.rngs.get("churn"), bp
        )
        if spec.churn == "paper"
        else None
    )

    recorder = TraceRecorder(keep_values=keep_values)
    metric_mask = np.ones(n, dtype=bool)
    if attacker_idx is not None:
        metric_mask[attacker_idx] = False

    successes = 0
    collisions = 0
    hw_buf = np.empty(n)

    for period in range(1, spec.periods + 1):
        churn.apply(period, state.present, lambda: -1)
        present = state.present

        attack_active = window is not None and window.active(period)
        # Scheduled transmission instants on the true-time axis: the node's
        # timer reads (period * BP + slot * aSlotTime) at
        # (local - adj - offset) / rate.
        count("mac.slot_draws", n)
        slots = slots_rng.integers(0, w + 1, size=n).astype(np.float64)
        contend = present.copy()
        local_targets = period * bp + slots * slot_time
        if attack_active:
            boost = (
                min(period, window.end_period - 1) - window.start_period
            ) * spec.attacker.pace_boost_us_per_period
            lead = spec.attacker.lead_slots * slot_time
            local_targets[attacker_idx] = period * bp - boost - lead
        tx_times = (local_targets - adj - state.offsets) / state.rates

        ids = np.flatnonzero(contend)
        winner, tx_start, n_coll = resolve_window(
            ids, tx_times[ids], airtime, spec.phy.cca_us
        )
        collisions += n_coll

        if winner is not None:
            successes += 1
            timestamp = float(
                np.floor(state.rates[winner] * tx_start + state.offsets[winner] + adj[winner])
            )
            if attack_active and winner == attacker_idx:
                timestamp -= spec.attacker.error_offset_us
            arrival = tx_start + latency
            state.hw_at(arrival, out=hw_buf)
            timers = hw_buf + adj
            count("phy.ts_jitter_draw", n)
            est = (
                timestamp
                + latency
                + channel_rng.uniform(-jitter, jitter, size=n)
            )
            receive = present.copy()
            receive[winner] = False
            count("phy.delivery_attempt", int(receive.sum()))
            if per > 0.0:
                if spec.phy.loss_model == "per_transmission":
                    count("phy.per_draw")
                    if channel_rng.random() < per:
                        receive[:] = False
                else:
                    count("phy.per_draw", n)
                    receive &= channel_rng.random(n) >= per
            if attack_active and winner == attacker_idx:
                # the attacker does not resynchronise to anyone
                pass
            adopt = receive & (est > timers)
            adj[adopt] += est[adopt] - timers[adopt]

        sample_time = (period + 0.9) * bp
        state.hw_at(sample_time, out=hw_buf)
        values = hw_buf + adj
        mask = present & metric_mask
        full = np.where(mask, values, np.nan) if keep_values else None
        recorder.record(sample_time, values[mask], -1, full_values=full)

    return VectorTsfResult(
        trace=recorder.finalize(),
        successful_beacons=successes,
        collisions=collisions,
        events=churn.events,
    )
