"""Security substrate: outlier filters and attacker models.

The coarse synchronization phase collects timestamp offsets and
"eliminates biased offsets" before averaging (paper section 3.3), citing
Song, Zhu & Cao [7] for two mechanisms: a threshold filter and the
generalized extreme studentized deviate (GESD) multi-outlier test. Both
live in :mod:`repro.security.outliers`.

Attacker models (:mod:`repro.security.attacks`) are implemented as
malicious protocol drivers that plug into the same network harness as the
honest protocols - an attacker *is* a node with different software.
"""

from repro.security.outliers import gesd_outliers, robust_offset_average, threshold_filter

__all__ = [
    "threshold_filter",
    "gesd_outliers",
    "robust_offset_average",
]
