#!/usr/bin/env python
"""Quickstart: synchronize a 20-station IBSS with SSTSP and inspect it.

Builds a network from one spec, runs it, and prints the numbers the
library is about: how tight the synchronization is, who the reference is,
and proof that no clock ever leaped.

Run:  python examples/quickstart.py
"""

from repro.analysis.metrics import audit_no_leaps, sync_latency_us
from repro.network.ibss import ScenarioSpec, build_network
from repro.sim.units import S

# 1. Describe the scenario: 20 stations, +-100 ppm oscillators, 30
#    simulated seconds. Every knob has the paper's defaults.
spec = ScenarioSpec(n=20, seed=42, duration_s=30.0, initial_offset_us=112.0)

# 2. Build the network (clocks, channel, MAC, uTESLA backend, protocol
#    drivers) and run it. crypto="full" uses real SHA-256 hash chains.
runner = build_network("sstsp", spec, crypto="full")
result = runner.run()
trace = result.trace

# 3. Inspect.
print(f"simulated {result.periods} beacon periods "
      f"({spec.duration_s:.0f} s) over {len(result.nodes)} stations")
print(f"successful beacons: {result.successful_beacons}, "
      f"collisions: {result.channel.stats.collisions}")

latency = sync_latency_us(trace)
print(f"\nsynchronized (max difference < 25 us) after "
      f"{latency / S:.2f} s from +-112 us initial offsets")
print(f"steady-state max clock difference: "
      f"{trace.steady_state_error_us():.2f} us (paper: < 10 us)")

reference = next(n for n in result.nodes if n.protocol.is_reference())
print(f"\ncurrent reference: station {reference.node_id} "
      f"(oscillator skew {reference.hw.skew_ppm():+.1f} ppm)")

# 4. The paper's headline guarantee: adjusted clocks never step - verify
#    every station's clock is continuous and monotone over the whole run.
assert all(
    audit_no_leaps(node.protocol.clock, 0.0, spec.duration_s * S)
    for node in result.nodes
)
print("\nno-leap audit passed: every adjusted clock is continuous and "
      "monotone across "
      f"{sum(n.protocol.clock.adjustments for n in result.nodes)} adjustments")

# 5. Full series for plotting elsewhere.
trace.save_csv("quickstart_trace.csv")
print("per-BP trace written to quickstart_trace.csv")
