"""Application-layer bench: what synchronization quality buys.

Runs the paper's motivating IBSS workloads (power save, FHSS, slotted
QoS) over measured TSF and SSTSP clock traces and asserts the
application-level ordering: SSTSP's tighter clocks mean smaller safe ATIM
windows (energy), less hop-boundary loss (airtime) and smaller TDMA
guards (capacity).
"""

from __future__ import annotations

from conftest import paper_rows

from repro.apps import (
    evaluate_fhss,
    evaluate_power_save,
    evaluate_tdma,
)
from repro.experiments.scenarios import quick_spec
from repro.fastlane import run_sstsp_vectorized, run_tsf_vectorized


def _run_both():
    spec = quick_spec(60, seed=11, duration_s=30.0)
    tsf = run_tsf_vectorized(spec, keep_values=True).trace.window(5e6, 31e6)
    sstsp = run_sstsp_vectorized(spec, keep_values=True).trace.window(5e6, 31e6)
    return tsf, sstsp


def test_applications_of_synchronization(benchmark):
    tsf, sstsp = benchmark.pedantic(_run_both, rounds=1, iterations=1)
    ps = {"tsf": evaluate_power_save(tsf), "sstsp": evaluate_power_save(sstsp)}
    fh = {"tsf": evaluate_fhss(tsf), "sstsp": evaluate_fhss(sstsp)}
    td = {"tsf": evaluate_tdma(tsf), "sstsp": evaluate_tdma(sstsp)}

    assert ps["sstsp"].min_safe_window_us < ps["tsf"].min_safe_window_us
    assert ps["sstsp"].energy_savings_vs(ps["tsf"]) > 0.2
    assert fh["sstsp"].frame_loss_worst_pair <= fh["tsf"].frame_loss_worst_pair
    assert td["sstsp"].min_guard_us < td["tsf"].min_guard_us
    assert td["sstsp"].violation_rate <= td["tsf"].violation_rate

    paper_rows(
        benchmark,
        "applications: what the sync difference buys",
        [
            f"power save: min safe ATIM window {ps['tsf'].min_safe_window_us:.0f}us "
            f"(TSF) vs {ps['sstsp'].min_safe_window_us:.0f}us (SSTSP), "
            f"{ps['sstsp'].energy_savings_vs(ps['tsf']) * 100:.0f}% awake-time saving",
            f"FHSS: worst-pair frame loss {fh['tsf'].frame_loss_worst_pair * 100:.2f}% "
            f"vs {fh['sstsp'].frame_loss_worst_pair * 100:.2f}%",
            f"TDMA: min guard {td['tsf'].min_guard_us:.1f}us vs "
            f"{td['sstsp'].min_guard_us:.1f}us "
            f"({td['sstsp'].capacity_gain_vs(td['tsf']) * 100:.1f}% capacity gain)",
        ],
    )
