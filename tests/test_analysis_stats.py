"""Property tests for the CI math behind ``repro analyze``.

The contracts, per ISSUE 7:

* bootstrap and Student-t intervals recover (approximately) their
  nominal 95% coverage on seeded normal and lognormal samples;
* a paired comparison's sign matches a known injected shift;
* degenerate cases (n = 1, zero variance, None/NaN gaps) return
  well-defined values instead of NaN;
* the bootstrap is a pure function of its inputs (seeded), so analysis
  output can be byte-stable.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.stats import (
    BOOTSTRAP_SEED,
    bootstrap_ci_mean,
    clean_values,
    paired_stats,
    summarize_values,
    t_interval,
)

# ---------------------------------------------------------------------
# coverage of the nominal 95% level (seeded replications)
# ---------------------------------------------------------------------


def _coverage(sampler, interval_fn, trials=300, n=15):
    hits = 0
    for _ in range(trials):
        sample = sampler(n)
        if interval_fn(sample).contains(sampler.true_mean):
            hits += 1
    return hits / trials


class _NormalSampler:
    true_mean = 10.0

    def __init__(self, seed=101):
        self.rng = np.random.default_rng(seed)

    def __call__(self, n):
        return self.rng.normal(self.true_mean, 3.0, size=n)


class _LognormalSampler:
    #: mean of lognormal(mu=0, sigma=0.75) is exp(sigma^2 / 2)
    true_mean = math.exp(0.75**2 / 2.0)

    def __init__(self, seed=202):
        self.rng = np.random.default_rng(seed)

    def __call__(self, n):
        return self.rng.lognormal(0.0, 0.75, size=n)


class TestCoverage:
    def test_t_interval_covers_normal_mean(self):
        coverage = _coverage(_NormalSampler(), t_interval)
        assert 0.90 <= coverage <= 0.99, coverage

    def test_bootstrap_covers_normal_mean(self):
        # Percentile bootstrap under-covers slightly at n=15; the band
        # reflects its known small-sample bias, not a loose test.
        coverage = _coverage(_NormalSampler(seed=303), bootstrap_ci_mean)
        assert 0.82 <= coverage <= 0.99, coverage

    def test_t_interval_covers_lognormal_mean(self):
        # Skew costs coverage; the t interval should still be near
        # nominal, not collapse.
        coverage = _coverage(_LognormalSampler(), t_interval, n=25)
        assert 0.82 <= coverage <= 0.99, coverage

    def test_bootstrap_covers_lognormal_mean(self):
        coverage = _coverage(
            _LognormalSampler(seed=404), bootstrap_ci_mean, n=25
        )
        assert 0.78 <= coverage <= 0.99, coverage

    def test_wider_spread_widens_the_t_interval(self):
        rng = np.random.default_rng(7)
        base = rng.normal(0.0, 1.0, size=20)
        narrow = t_interval(base)
        wide = t_interval(base * 10.0)
        assert wide.half_width > narrow.half_width


# ---------------------------------------------------------------------
# paired comparison: sign follows the injected shift
# ---------------------------------------------------------------------


class TestPairedShift:
    def test_positive_shift_makes_b_larger(self):
        rng = np.random.default_rng(11)
        a = list(rng.normal(50.0, 5.0, size=12))
        b = [value + 4.0 + rng.normal(0.0, 0.5) for value in a]
        result = paired_stats(a, b)
        assert result.diff.mean < 0.0  # diff = a - b
        assert result.a_smaller_significant
        assert not result.b_smaller_significant
        assert result.effect_size < 0.0

    def test_negative_shift_flips_the_sign(self):
        rng = np.random.default_rng(12)
        a = list(rng.normal(50.0, 5.0, size=12))
        b = [value - 4.0 + rng.normal(0.0, 0.5) for value in a]
        result = paired_stats(a, b)
        assert result.diff.mean > 0.0
        assert result.b_smaller_significant
        assert result.effect_size > 0.0

    def test_no_shift_is_not_significant(self):
        rng = np.random.default_rng(13)
        a = list(rng.normal(50.0, 5.0, size=12))
        b = [value + rng.normal(0.0, 3.0) for value in a]
        result = paired_stats(a, b)
        assert not result.a_smaller_significant
        assert not result.b_smaller_significant

    def test_missing_pairs_dropped_as_pairs(self):
        a = [1.0, None, 3.0, 4.0]
        b = [2.0, 2.5, float("nan"), 5.0]
        result = paired_stats(a, b)
        assert result.n == 2  # (1,2) and (4,5) survive
        assert result.missing == 2
        assert result.diff.mean == pytest.approx(-1.0)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="equal-length"):
            paired_stats([1.0], [1.0, 2.0])

    def test_all_missing_rejected(self):
        with pytest.raises(ValueError, match="no complete pairs"):
            paired_stats([None, 1.0], [2.0, None])


# ---------------------------------------------------------------------
# degenerate cases: defined values, never NaN
# ---------------------------------------------------------------------


class TestDegenerate:
    def test_single_value_summary_has_no_nan(self):
        stats = summarize_values([42.0])
        assert stats.n == 1
        assert stats.mean == stats.median == stats.min == stats.max == 42.0
        assert stats.std == 0.0
        assert stats.t_ci.low == -math.inf and stats.t_ci.high == math.inf
        assert stats.bootstrap_ci.low == stats.bootstrap_ci.high == 42.0

    def test_zero_variance_collapses_both_intervals(self):
        stats = summarize_values([5.0] * 6)
        assert stats.std == 0.0
        assert stats.t_ci.low == stats.t_ci.high == 5.0
        assert stats.bootstrap_ci.low == stats.bootstrap_ci.high == 5.0

    def test_zero_variance_paired_effect_size_is_defined(self):
        shifted = paired_stats([1.0, 2.0, 3.0], [2.0, 3.0, 4.0])
        assert shifted.effect_size == -math.inf
        identical = paired_stats([1.0, 2.0], [1.0, 2.0])
        assert identical.effect_size == 0.0

    def test_gaps_are_dropped_and_counted(self):
        stats = summarize_values([1.0, None, 3.0, float("nan"), float("inf")])
        assert stats.n == 2
        assert stats.missing == 3
        assert stats.mean == pytest.approx(2.0)

    def test_empty_after_cleaning_raises(self):
        with pytest.raises(ValueError, match="no finite values"):
            summarize_values([None, float("nan")])

    def test_clean_values(self):
        kept, dropped = clean_values([1, None, 2.5, float("-inf")])
        assert kept == [1.0, 2.5]
        assert dropped == 2

    def test_interval_validation(self):
        with pytest.raises(ValueError):
            t_interval([])
        with pytest.raises(ValueError):
            bootstrap_ci_mean([])
        with pytest.raises(ValueError, match="resamples"):
            bootstrap_ci_mean([1.0, 2.0], resamples=0)


# ---------------------------------------------------------------------
# determinism and structural invariants (hypothesis)
# ---------------------------------------------------------------------

finite_floats = st.floats(
    min_value=-1e9, max_value=1e9, allow_nan=False, allow_infinity=False
)


class TestInvariants:
    @given(st.lists(finite_floats, min_size=1, max_size=30))
    @settings(max_examples=60, deadline=None)
    def test_bootstrap_is_deterministic_and_bounded(self, values):
        first = bootstrap_ci_mean(values)
        second = bootstrap_ci_mean(values)
        assert first == second  # pure function of (values, resamples, seed)
        assert first.low <= first.high
        # Resample means can miss the data range by a few ulps at large
        # magnitudes; the slack must scale with the values.
        slack = 1e-9 * max(1.0, max(abs(v) for v in values))
        assert first.low >= min(values) - slack
        assert first.high <= max(values) + slack

    @given(st.lists(finite_floats, min_size=2, max_size=30))
    @settings(max_examples=60, deadline=None)
    def test_t_interval_brackets_the_mean(self, values):
        interval = t_interval(values)
        mean = float(np.mean(np.asarray(values, dtype=np.float64)))
        assert interval.low <= mean <= interval.high

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=30, deadline=None)
    def test_bootstrap_seed_changes_resamples_not_bounds_ordering(self, seed):
        values = [1.0, 4.0, 2.0, 8.0, 5.0]
        interval = bootstrap_ci_mean(values, seed=seed)
        assert interval.low <= interval.high
        assert interval.low >= 1.0 and interval.high <= 8.0

    def test_default_seed_is_the_documented_constant(self):
        # The CLI's byte-stability leans on this: changing the default
        # seed silently would change every committed golden table.
        assert BOOTSTRAP_SEED == 20060815
