"""Vectorised simulation engines for large-N parameter sweeps.

The object-oriented lane (:mod:`repro.network`) is the readable reference
implementation; these engines re-express the per-BP inner loop as numpy
array operations over all nodes at once (per the optimisation guides:
first make it work and tested, then vectorise the measured hot loop).

Differences from the reference lane - deliberate, documented
approximations that do not change any reported curve's shape:

* contention uses the classic slot-granular "unique minimum slot wins"
  rule instead of the carrier-sense cascade (the cascade's extra late
  successes are rare at the paper's parameters);
* SSTSP beacon protection uses the modeled backend's decision logic
  inlined (the decisions are what matters; the backends are proven
  equivalent in ``tests/test_core_backend.py``);
* beacons are processed at slot-quantised rather than skew-exact times.

``tests/test_fastlane.py`` cross-validates both engines against the
reference lane statistically, and ``benchmarks/bench_fastlane.py``
measures the speedup.
"""

from repro.fastlane.tsf_vec import VectorTsfResult, run_tsf_vectorized
from repro.fastlane.sstsp_vec import VectorSstspResult, run_sstsp_vectorized

__all__ = [
    "run_tsf_vectorized",
    "run_sstsp_vectorized",
    "VectorTsfResult",
    "VectorSstspResult",
]
