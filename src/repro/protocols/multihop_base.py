"""The multi-hop protocol interface.

:class:`~repro.multihop.runner.MultiHopRunner` is a *harness*: it owns
the kernel concerns only — clocks, spatial carrier sensing, the lossy
broadcast channel, churn, fault injection, tracing and metric sampling.
Everything synchronization-specific (who transmits when, what a frame
carries, how a receiver filters and applies it, when a node volunteers
as the new time source) lives behind :class:`MultiHopProtocol`, the
multi-hop analogue of the single-hop
:class:`~repro.protocols.base.SyncProtocol`: period hooks, a TX intent,
frame construction, reception handling, a synchronized-time query — plus
the hooks single-hop has no need for (hop tracking, upstream selection,
root takeover).

One instance drives one station. The harness calls the hooks in a fixed
order each beacon period, for nodes in ascending id order:

1. :meth:`MultiHopProtocol.begin_period` — return the transmission
   delay inside the beacon window, or ``None`` to stay quiet. All
   randomness must come from :attr:`MultiHopContext.slot_rng` (the
   harness's contention stream), keeping runs bit-reproducible across
   refactors of either side.
2. :meth:`MultiHopProtocol.make_frame` — build the
   :class:`MultiHopFrame` for a station that transmitted.
3. :meth:`MultiHopProtocol.on_receptions` — handle every frame that
   decoded at this station this period; return whether one was
   *accepted* (the input to silence tracking). Timestamp-estimate
   jitter is drawn via :meth:`MultiHopContext.sample_timestamp_error`.
4. :meth:`MultiHopProtocol.end_period` — silence bookkeeping.
5. :meth:`MultiHopProtocol.wants_root_takeover` /
   :meth:`MultiHopProtocol.on_elected_root` — the orphan-election
   hooks, consulted only while the network has no root.

Synchronized time must be expressed through the station's
:class:`~repro.clocks.chain.ClockChain` (mutating or replacing
``chain.adjusted``): the harness samples every station through the
chain, and the chaos/property audits (``audit_no_leaps``) read
``protocol.clock.is_monotonic`` — a protocol that stepped some private
variable instead would dodge both.

Protocols register under a short name in :data:`MULTIHOP_PROTOCOLS`
(lazy dotted paths, resolved on demand — mirroring the sweep job
registry) and declare their frame economics as class attributes
(:attr:`MultiHopProtocol.beacon_bytes`,
:attr:`MultiHopProtocol.beacon_airtime_slots`), which the harness uses
for channel delivery and airtime accounting instead of hardcoding any
one protocol's constants.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from importlib import import_module
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    Type,
)

import numpy as np

from repro.clocks.adjusted import AdjustedClock
from repro.clocks.chain import ClockChain
from repro.phy.params import SSTSP_BEACON_AIRTIME_SLOTS, SSTSP_BEACON_BYTES

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.multihop.runner import MultiHopSpec
    from repro.multihop.topology import Topology
    from repro.network.runner import NetworkRunner


@dataclass
class MultiHopFrame:
    """One on-air multi-hop beacon.

    ``timestamp`` is the sender's *normalized* time reference: its
    synchronized-clock estimate of the period start ``T^j`` (its actual
    emission instant is ``T^j + delay_us`` on its own clock, where
    ``delay_us`` — hop segment plus backoff — is deterministic schedule
    information carried in the beacon). Receivers subtract ``delay_us``
    from the reception time too, so sample pairs sit on a clean BP grid
    and per-period backoff never pollutes rate estimation — without this
    normalisation the backoff jitter (~3 slots) compounds per hop and
    blows up the deep-hop error.

    ``tx_true`` is filled by the harness (the true-time instant the
    sender's adjusted clock reads ``T^j + delay_us``).
    """

    sender: int
    hop: int
    interval: int
    tx_true: float
    timestamp: float
    delay_us: float


class MultiHopContext:
    """The harness services a protocol hook may touch.

    One instance per run; the harness refreshes :attr:`root` and
    :attr:`orphan_election` at the top of every period.
    """

    __slots__ = (
        "spec",
        "topology",
        "slot_rng",
        "rx_latency_us",
        "root",
        "orphan_election",
        "_sample_timestamp_error",
        "_state_of",
        "_is_present",
    )

    def __init__(
        self,
        spec: "MultiHopSpec",
        slot_rng: np.random.Generator,
        rx_latency_us: float,
        sample_timestamp_error: Callable[[], float],
        state_of: Callable[[int], "MultiHopProtocol"],
        is_present: Callable[[int], bool],
    ) -> None:
        self.spec = spec
        self.topology: "Topology" = spec.topology
        #: The shared contention RNG; every backoff/thinning draw comes
        #: from here so the draw sequence is a property of the run, not
        #: of which module hosts the drawing code.
        self.slot_rng = slot_rng
        #: Beacon airtime plus propagation: the lag between a frame's
        #: ``tx_true`` and its decode instant at any receiver.
        self.rx_latency_us = rx_latency_us
        #: Current root id (-1 while orphaned). Refreshed per period.
        self.root = spec.root
        #: True while the network has no live root. Refreshed per period.
        self.orphan_election = False
        self._sample_timestamp_error = sample_timestamp_error
        self._state_of = state_of
        self._is_present = is_present

    def sample_timestamp_error(self) -> float:
        """One draw of per-reception timestamp-estimate jitter (the
        channel's stream — shared with every other lane)."""
        return self._sample_timestamp_error()

    def state_of(self, node_id: int) -> "MultiHopProtocol":
        """Another station's protocol state (neighbour introspection —
        e.g. same-hop rotation counts). Read-only by convention."""
        return self._state_of(node_id)

    def is_present(self, node_id: int) -> bool:
        """Whether a station is currently in the network."""
        return self._is_present(node_id)


class MultiHopProtocol(ABC):
    """Per-station multi-hop synchronization driver.

    Subclasses implement the four period hooks; the common state every
    scheme needs (hop distance, upstream, silence streak, the clock
    chain) lives here so the harness, tests and chaos audits can treat
    any protocol uniformly.
    """

    #: Short identifier carried in trace events (``beacon_tx`` ``proto``
    #: field) and used as the registry key / CSV tag.
    protocol_name: str = "multihop"
    #: On-air size of one beacon; the harness feeds it to the channel's
    #: delivery model (loss probability scales with size).
    beacon_bytes: int = SSTSP_BEACON_BYTES
    #: Airtime of one beacon in slots; the harness derives window
    #: segmentation and rx latency from it.
    beacon_airtime_slots: int = SSTSP_BEACON_AIRTIME_SLOTS

    def __init__(self, node_id: int, chain: ClockChain, spec: "MultiHopSpec") -> None:
        self.node_id = node_id
        self.chain = chain
        self.spec = spec
        self.hop: Optional[int] = None  # None = not yet synchronized; 0 = root
        self.upstream: Optional[int] = None
        self.silent = 0
        self.adjustments = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def build(
        cls, spec: "MultiHopSpec", chains: Sequence[ClockChain]
    ) -> List["MultiHopProtocol"]:
        """One station per chain. Override to wire protocol-family shared
        state (e.g. the SSTSP relay-rotation phase table)."""
        return [cls(i, chain, spec) for i, chain in enumerate(chains)]

    @classmethod
    def degenerate_runner(cls, spec: "MultiHopSpec") -> Optional["NetworkRunner"]:
        """A single-hop reference runner equivalent to ``spec`` on a
        complete graph, or ``None`` when the protocol has no single-hop
        counterpart (the harness then runs the spatial path even on
        complete topologies)."""
        return None

    # ------------------------------------------------------------------
    # Kernel surface (metrics, churn, chaos audits)
    # ------------------------------------------------------------------

    @property
    def clock(self) -> AdjustedClock:
        """The station's adjusted clock (chaos monotonicity audits read it)."""
        return self.chain.adjusted

    def reset_sync(self) -> None:
        """Discard synchronization state; re-acquire from the next beacon."""
        self.hop = None
        self.upstream = None
        self.silent = 0

    def synchronized_time(self, hw_time: float) -> float:
        """This station's synchronized-time estimate at ``hw_time``."""
        return self.chain.adjusted.read_current(hw_time)

    def is_synchronized(self) -> bool:
        """Whether the station is attached to the time-distribution tree."""
        return self.hop is not None

    def is_reference(self) -> bool:
        """Whether this station is the current root time source."""
        return self.hop == 0

    def on_leave(self, period: int) -> None:
        """Graceful departure keeps state (the station may return in sync)."""

    def on_return(self, period: int) -> None:
        """A returning/restarted station re-acquires from scratch."""
        self.reset_sync()

    # ------------------------------------------------------------------
    # Period hooks
    # ------------------------------------------------------------------

    @abstractmethod
    def begin_period(self, period: int, ctx: MultiHopContext) -> Optional[float]:
        """TX intent: the delay (µs after the nominal period start, on
        this station's synchronized clock) at which it transmits this
        period, or ``None`` to stay quiet."""

    @abstractmethod
    def make_frame(
        self, period: int, delay_us: float, tx_true: float, ctx: MultiHopContext
    ) -> MultiHopFrame:
        """The frame for a transmission :meth:`begin_period` scheduled."""

    @abstractmethod
    def on_receptions(
        self, period: int, decoded: List[MultiHopFrame], ctx: MultiHopContext
    ) -> bool:
        """Handle the frames that decoded at this station this period
        (``decoded`` is non-empty, in transmission-time order). Returns
        whether a frame was *accepted* — decoded, fresh and
        plausibility-passing — which feeds silence tracking."""

    @abstractmethod
    def end_period(self, period: int, accepted: bool, ctx: MultiHopContext) -> None:
        """Silence bookkeeping; runs for every present non-root station
        after receptions settle."""

    # ------------------------------------------------------------------
    # Orphan election
    # ------------------------------------------------------------------

    def wants_root_takeover(self, accepted: bool) -> bool:
        """While the network is orphaned: does this station volunteer as
        the new root? Default: a first-hop station that heard nothing
        acceptable (its transmission met no competing time source)."""
        return self.hop == 1 and not accepted

    def on_elected_root(self, period: int, ctx: MultiHopContext) -> None:
        """Promotion to root. The new root is the timebase: clamp away
        any transient slewing slope (same rationale as the single-hop
        reference_pace_clamp), continuously at the current time."""
        self.hop = 0
        self.upstream = None
        hw_now = self.chain.hw.read((period + 1) * self.spec.beacon_period_us)
        k_old = self.clock.k
        k_new = min(max(k_old, 1.0 - 3e-4), 1.0 + 3e-4)
        if k_new != k_old:
            self.clock.slew_to(0.0, k_new, at_local_time=hw_now)


#: Registered multi-hop protocols: short name -> "module:Class". Lazy
#: dotted paths (resolved on first use) keep this table import-cheap and
#: cycle-free, exactly like the sweep job registry.
MULTIHOP_PROTOCOLS: Dict[str, str] = {
    "sstsp": "repro.protocols.multihop_sstsp:SstspRelayProtocol",
    "beaconless": "repro.protocols.multihop_beaconless:BeaconlessProtocol",
    "coop": "repro.protocols.multihop_coop:CoopAverageProtocol",
}

_RESOLVED: Dict[str, Type[MultiHopProtocol]] = {}


def available_multihop_protocols() -> Tuple[str, ...]:
    """Registered protocol names, in registry (insertion) order."""
    return tuple(MULTIHOP_PROTOCOLS)


def resolve_multihop_protocol(name: str) -> Type[MultiHopProtocol]:
    """The protocol class registered under ``name``."""
    cached = _RESOLVED.get(name)
    if cached is not None:
        return cached
    try:
        target = MULTIHOP_PROTOCOLS[name]
    except KeyError:
        known = ", ".join(sorted(MULTIHOP_PROTOCOLS))
        raise ValueError(
            f"unknown multi-hop protocol {name!r} (known: {known})"
        ) from None
    module_name, _, attr = target.partition(":")
    cls = getattr(import_module(module_name), attr)
    if not (isinstance(cls, type) and issubclass(cls, MultiHopProtocol)):
        raise TypeError(f"{target} is not a MultiHopProtocol subclass")
    _RESOLVED[name] = cls
    return cls
