"""Tests for the related-work and ablation experiment harnesses."""

import pytest

from repro.experiments import ablations, related


class TestRelated:
    def test_all_protocols_present(self):
        rows = related.run(n_values=(10,), duration_s=5.0, seed=2)
        assert set(rows) == set(related.PROTOCOLS)
        for name in related.PROTOCOLS:
            assert 10 in rows[name]
            assert rows[name][10].steady_us > 0

    def test_sstsp_wins(self):
        rows = related.run(n_values=(20,), duration_s=15.0, seed=2)
        steadies = {name: rows[name][20].steady_us for name in related.PROTOCOLS}
        assert steadies["sstsp"] == min(steadies.values())
        assert steadies["sstsp"] < steadies["tsf"] / 2

    def test_main_prints(self, capsys):
        related.main(["--quick", "--seed", "2"])
        out = capsys.readouterr().out
        assert "sstsp" in out and "tsf" in out


class TestAblations:
    def test_guard_sweep_drag_scales(self):
        rows = ablations.sweep_guard(guards_us=(300.0, 600.0), n=20, seed=3)
        assert abs(rows[600.0]["drag"]) > abs(rows[300.0]["drag"])
        assert all(r["during_max"] < 100.0 for r in rows.values())

    def test_l_sweep_departure_transient_grows(self):
        rows = ablations.sweep_l(l_values=(1, 4), n=20, seed=2)
        assert (
            rows[4]["departure_transient"] >= rows[1]["departure_transient"] * 0.8
        )
        assert all(r["steady"] < 15.0 for r in rows.values())

    def test_m_sweep_shapes(self):
        rows = ablations.sweep_m(m_values=(1, 4), n=20, seed=1)
        assert rows[1]["latency_s"] < rows[4]["latency_s"]
        assert rows[4]["steady"] < rows[1]["steady"]
        assert rows[4]["lemma2_ratio"] == pytest.approx(0.0)

    def test_main_prints(self, capsys):
        ablations.main(["--quick"])
        out = capsys.readouterr().out
        assert "guard" in out and "Ablation" in out
