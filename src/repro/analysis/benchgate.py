"""The benchmark-trajectory gate: ``BENCH_*.json`` emit + compare.

``pytest benchmarks/ --benchmark-only --bench-json BENCH_8.json``
(see ``benchmarks/conftest.py``) serializes every benchmark's wall-time
statistics and numeric ``extra_info`` accuracy metrics into one
schema-versioned JSON file; ``repro bench-gate`` compares such a file
against a committed baseline and exits non-zero when a hot path
regressed beyond the noise band.

The gate compares *medians* (pytest-benchmark's median-of-k rounds),
with a **relative** threshold: a benchmark regresses when

    current_median > baseline_median * (1 + tolerance)

Benchmarks whose baseline median sits under ``min_wall_s`` are skipped —
sub-millisecond timings are scheduler noise, not trajectory. Accuracy
metrics (numeric ``extra_info`` entries) are reported when they drift
and can be gated with ``--extra-tolerance``; by default they inform, the
wall clock gates. See ``docs/analysis.md`` for noise-band tuning
(same-machine trajectories tolerate ~50%; cross-machine CI comparisons
need 2-3x).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

#: Bump on breaking changes to the BENCH_*.json layout. Loaders reject a
#: newer schema rather than misreading it.
BENCH_SCHEMA_VERSION = 1

#: Default relative noise band: fail above ``baseline * (1 + 0.5)``.
DEFAULT_TOLERANCE = 0.5

#: Baseline medians under this many seconds are too noisy to gate.
DEFAULT_MIN_WALL_S = 1e-3


def _numeric_extra(extra_info: Dict[str, Any]) -> Dict[str, float]:
    """The numeric subset of a benchmark's ``extra_info`` (sorted keys).

    Strings (the printed paper rows) and containers are dropped — only
    scalar accuracy metrics belong in the trajectory file.
    """
    numeric: Dict[str, float] = {}
    for key in sorted(extra_info):
        value = extra_info[key]
        if isinstance(value, bool):
            continue
        if isinstance(value, (int, float)):
            numeric[key] = float(value)
    return numeric


def bench_record(
    fullname: str,
    median_s: float,
    mean_s: float,
    stddev_s: float,
    min_s: float,
    rounds: int,
    iterations: int,
    group: Optional[str] = None,
    extra_info: Optional[Dict[str, Any]] = None,
    work: Optional[Dict[str, int]] = None,
) -> Dict[str, Any]:
    """One benchmark's entry in a ``BENCH_*.json`` file.

    ``work`` carries the benchmark's deterministic work counters
    (:mod:`repro.obs.counters`) — a pure function of the workload, so
    the gate compares them **exactly** (zero tolerance), independent of
    the wall-time noise band. An additive field: baselines written
    before it simply skip the work comparison.
    """
    return {
        "fullname": fullname,
        "group": group,
        "median_s": median_s,
        "mean_s": mean_s,
        "stddev_s": stddev_s,
        "min_s": min_s,
        "rounds": rounds,
        "iterations": iterations,
        "extra": _numeric_extra(extra_info or {}),
        "work": {key: int((work or {})[key]) for key in sorted(work or {})},
    }


def write_bench_json(
    path: str, label: str, records: Sequence[Dict[str, Any]]
) -> str:
    """Write the schema-versioned trajectory file (sorted keys, stable
    bytes for identical inputs); returns ``path``."""
    payload = {
        "schema": BENCH_SCHEMA_VERSION,
        "label": label,
        "benchmarks": {record["fullname"]: record for record in records},
    }
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, sort_keys=True, indent=1)
        fh.write("\n")
    return path


def load_bench_json(path: str) -> Dict[str, Any]:
    """Read a trajectory file; rejects a newer schema than this reader."""
    with open(path, "r", encoding="utf-8") as fh:
        payload = json.load(fh)
    schema = payload.get("schema")
    if schema is None or schema > BENCH_SCHEMA_VERSION:
        raise ValueError(
            f"bench json schema {schema!r} is not supported "
            f"(this reader handles <= {BENCH_SCHEMA_VERSION}): {path}"
        )
    if not isinstance(payload.get("benchmarks"), dict):
        raise ValueError(f"bench json has no benchmarks table: {path}")
    return payload


@dataclass
class GateReport:
    """Outcome of one baseline-vs-current comparison."""

    compared: int = 0
    skipped_fast: int = 0
    regressions: List[str] = field(default_factory=list)
    improvements: List[str] = field(default_factory=list)
    missing: List[str] = field(default_factory=list)
    new: List[str] = field(default_factory=list)
    extra_drift: List[str] = field(default_factory=list)
    work_drift: List[str] = field(default_factory=list)
    work_compared: int = 0
    lines: List[str] = field(default_factory=list)

    def failed(
        self,
        strict: bool,
        extra_tolerance: Optional[float],
        gate_work: bool = True,
    ) -> bool:
        """Whether the gate should exit non-zero.

        Work-counter drift fails by default (``gate_work``): the
        counters are machine-independent, so *any* drift is a real
        workload change, not noise.
        """
        if self.regressions:
            return True
        if strict and self.missing:
            return True
        if extra_tolerance is not None and self.extra_drift:
            return True
        if gate_work and self.work_drift:
            return True
        return False


def compare_bench(
    current: Dict[str, Any],
    baseline: Dict[str, Any],
    tolerance: float = DEFAULT_TOLERANCE,
    min_wall_s: float = DEFAULT_MIN_WALL_S,
    extra_tolerance: Optional[float] = None,
) -> GateReport:
    """Compare two trajectory payloads benchmark by benchmark."""
    if tolerance < 0:
        raise ValueError("tolerance must be >= 0")
    report = GateReport()
    base_table = baseline["benchmarks"]
    cur_table = current["benchmarks"]
    for name in sorted(base_table):
        if name not in cur_table:
            report.missing.append(name)
            report.lines.append(f"MISSING   {name}: in baseline, not in current")
            continue
        base = base_table[name]
        cur = cur_table[name]
        base_median = float(base["median_s"])
        cur_median = float(cur["median_s"])
        if base_median < min_wall_s:
            report.skipped_fast += 1
            report.lines.append(
                f"SKIP      {name}: baseline median {base_median:.6f}s "
                f"under the {min_wall_s:.6f}s noise floor"
            )
            continue
        report.compared += 1
        ratio = cur_median / base_median if base_median > 0 else float("inf")
        line = (
            f"{name}: {base_median:.6f}s -> {cur_median:.6f}s "
            f"({ratio:.2f}x, band <= {1 + tolerance:.2f}x)"
        )
        if ratio > 1.0 + tolerance:
            report.regressions.append(name)
            report.lines.append(f"REGRESSED {line}")
        elif ratio < 1.0 / (1.0 + tolerance):
            report.improvements.append(name)
            report.lines.append(f"IMPROVED  {line}")
        else:
            report.lines.append(f"OK        {line}")
        drift_band = extra_tolerance if extra_tolerance is not None else 0.0
        base_extra = base.get("extra", {})
        cur_extra = cur.get("extra", {})
        for key in sorted(base_extra):
            if key not in cur_extra:
                continue
            base_value = float(base_extra[key])
            cur_value = float(cur_extra[key])
            scale = max(abs(base_value), abs(cur_value))
            if scale == 0.0:
                continue
            rel = abs(cur_value - base_value) / scale
            if rel > drift_band:
                report.extra_drift.append(f"{name}:{key}")
                report.lines.append(
                    f"DRIFT     {name} extra[{key}]: "
                    f"{base_value!r} -> {cur_value!r} (rel {rel:.3g})"
                )
        # Deterministic work counters compare exactly: they are a pure
        # function of the workload, so zero tolerance — separate from the
        # wall-time noise band. Baselines/currents without work metrics
        # (pre-PR-10 files, or benches that don't measure work) skip.
        base_work = base.get("work") or {}
        cur_work = cur.get("work") or {}
        if base_work and cur_work:
            report.work_compared += 1
            for key in sorted(set(base_work) | set(cur_work)):
                base_count = int(base_work.get(key, 0))
                cur_count = int(cur_work.get(key, 0))
                if base_count != cur_count:
                    report.work_drift.append(f"{name}:{key}")
                    report.lines.append(
                        f"WORK      {name} work[{key}]: "
                        f"{base_count} -> {cur_count} "
                        f"({cur_count - base_count:+d})"
                    )
    for name in sorted(cur_table):
        if name not in base_table:
            report.new.append(name)
            report.lines.append(f"NEW       {name}: not in baseline")
    return report


def main(argv: Optional[List[str]] = None) -> int:
    """``repro bench-gate``: compare a fresh BENCH json to a baseline."""
    parser = argparse.ArgumentParser(
        prog="repro bench-gate",
        description="Fail when benchmark medians regressed past the noise band.",
    )
    parser.add_argument("current", help="freshly emitted BENCH_*.json")
    parser.add_argument(
        "--baseline", required=True,
        help="committed baseline BENCH_*.json to compare against",
    )
    parser.add_argument(
        "--tolerance", type=float, default=DEFAULT_TOLERANCE, metavar="REL",
        help="relative noise band: fail above baseline*(1+REL) "
        f"(default {DEFAULT_TOLERANCE}; use 2-3 across machines)",
    )
    parser.add_argument(
        "--min-wall-s", type=float, default=DEFAULT_MIN_WALL_S, metavar="S",
        help="skip benchmarks whose baseline median is under S seconds "
        f"(default {DEFAULT_MIN_WALL_S})",
    )
    parser.add_argument(
        "--extra-tolerance", type=float, default=None, metavar="REL",
        help="also fail when a numeric extra_info metric drifts more "
        "than REL relative (default: drift is reported, not gated)",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="also fail when a baseline benchmark is missing from current",
    )
    parser.add_argument(
        "--no-work-gate", action="store_true",
        help="report deterministic work-counter drift without failing on "
        "it (default: any work drift fails — the counters are "
        "machine-independent, so drift is a real workload change)",
    )
    args = parser.parse_args(argv)
    current = load_bench_json(args.current)
    baseline = load_bench_json(args.baseline)
    report = compare_bench(
        current,
        baseline,
        tolerance=args.tolerance,
        min_wall_s=args.min_wall_s,
        extra_tolerance=args.extra_tolerance,
    )
    print(
        f"bench-gate: {args.current} (label {current.get('label')!r}) vs "
        f"baseline {args.baseline} (label {baseline.get('label')!r})"
    )
    for line in report.lines:
        print(f"  {line}")
    print(
        f"bench-gate: {report.compared} compared, "
        f"{report.skipped_fast} under the noise floor, "
        f"{len(report.regressions)} regressed, "
        f"{len(report.improvements)} improved, "
        f"{len(report.missing)} missing, {len(report.new)} new, "
        f"{report.work_compared} work-checked, "
        f"{len(report.work_drift)} work drift(s)"
    )
    if report.failed(
        args.strict, args.extra_tolerance, gate_work=not args.no_work_gate
    ):
        print("bench-gate: FAIL", file=sys.stderr)
        return 1
    print("bench-gate: OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
