"""Tests of the experiment harness: every paper table/figure regenerates
with the right shape at quick scale, and the reporting helpers behave."""

import pytest

from repro.analysis.metrics import TraceRecorder
from repro.experiments import fig1, fig2, fig3, fig4, lemmas, overhead, table1
from repro.experiments.cli import main as cli_main
from repro.experiments.report import (
    ascii_chart,
    downsample_rows,
    format_table,
    trace_chart,
)


def make_trace(values):
    recorder = TraceRecorder()
    for i, v in enumerate(values):
        recorder.record((i + 1) * 100_000.0, [0.0, v])
    return recorder.finalize()


class TestReportHelpers:
    def test_ascii_chart_renders(self):
        chart = ascii_chart([0, 1, 2, 3], [1.0, 10.0, 100.0, 5.0], "t", width=20, height=4)
        assert "t" in chart and "#" in chart

    def test_ascii_chart_empty(self):
        assert "(no data)" in ascii_chart([], [], "t")

    def test_trace_chart(self):
        chart = trace_chart(make_trace([1, 5, 2]), "demo", width=10, height=3)
        assert "demo" in chart

    def test_format_table(self):
        table = format_table(["a", "bb"], [(1, "x"), (22, "yy")], title="T")
        lines = table.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_downsample(self):
        rows = downsample_rows(make_trace(range(100)), points=5)
        assert len(rows) == 5
        assert rows[0][1] == 0.0 and rows[-1][1] == 99.0


class TestExperimentRuns:
    def test_fig1_shape(self):
        result = fig1.run(n_values=(20, 80), quick=True, seed=2)
        rows = list(result.summary_rows())
        assert len(rows) == 2
        errs = {n: t.steady_state_error_us() for n, t in result.traces.items()}
        assert errs[80] > errs[20] * 0.8  # monotone-ish growth at quick scale

    def test_fig2_shape(self):
        result = fig2.run(n=80, m=4, quick=True, seed=2)
        assert result.trace.steady_state_error_us() < 12.0

    def test_table1_shape(self):
        rows = table1.run(m_values=(1, 3), n=30, duration_s=20.0, replicas=1)
        assert rows[1].latency_s < rows[3].latency_s
        assert rows[3].error_us < rows[1].error_us

    def test_fig3_shape(self):
        result = fig3.run(n=30, quick=True, seed=2)
        maxima = result.phase_maxima()
        assert maxima["during"] > maxima["before"]

    def test_fig4_shape(self):
        result = fig4.run(n=60, m=4, quick=True, seed=2)
        maxima = result.phase_maxima()
        assert maxima["during"] < 150.0
        assert result.drag_us() < 0.0

    def test_overhead_run(self):
        data = overhead.run(chain_length=256, samples=64)
        assert data["tsf"].beacon_bytes == 56
        assert len(data["chain"]) == 3

    def test_lemmas_measures(self):
        ratio = lemmas.measure_contraction(m=3, n=20, seed=2)
        assert 0.0 <= ratio < 1.05
        change = lemmas.measure_reference_change(m=4, n=10, seed=2)
        assert change["settled"] < 25.0


class TestCli:
    def test_single_experiment(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("SSTSP_RESULTS_DIR", str(tmp_path))
        monkeypatch.chdir(tmp_path)
        # reload report module so RESULTS_DIR picks up the env var
        import importlib

        from repro.experiments import report

        importlib.reload(report)
        try:
            assert cli_main(["overhead", "--quick"]) == 0
            out = capsys.readouterr().out
            assert "92" in out and "56" in out
        finally:
            monkeypatch.delenv("SSTSP_RESULTS_DIR")
            importlib.reload(report)

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            cli_main(["fig99"])

    def test_fig2_quick_writes_csv(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("SSTSP_RESULTS_DIR", str(tmp_path / "r"))
        import importlib

        from repro.experiments import report

        importlib.reload(report)
        try:
            fig2.main(["--quick", "--nodes", "40"])
            out = capsys.readouterr().out
            assert "steady-state error" in out
            assert (tmp_path / "r" / "fig2_sstsp_n40_m4.csv").exists()
        finally:
            monkeypatch.delenv("SSTSP_RESULTS_DIR")
            importlib.reload(report)  # restore default RESULTS_DIR
