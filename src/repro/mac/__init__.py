"""802.11 ad-hoc-mode beacon MAC.

Implements the beacon generation window of the standard's TSF: at each
Target Beacon Transmission Time every competing station draws a uniform
slot delay in ``[0, w]`` slot times, transmits when its timer expires
unless it received a beacon first, and defers while the medium is busy.
:mod:`repro.mac.contention` resolves one window's worth of candidate
transmissions into successes, collisions and cancellations on the real
(clock-skew-aware) time axis.
"""

from repro.mac.beacon import BeaconFrame, SecureBeaconFrame
from repro.mac.contention import (
    ContentionResult,
    Transmission,
    draw_slots,
    resolve_contention,
    resolve_slotted,
)

__all__ = [
    "BeaconFrame",
    "SecureBeaconFrame",
    "ContentionResult",
    "Transmission",
    "draw_slots",
    "resolve_contention",
    "resolve_slotted",
]
