"""The metrics registry: counters, gauges and histogram summaries.

One :class:`MetricsRegistry` accumulates the quantitative side of a run
— how many beacons aired, how many receptions the guard rejected, how
far the guard margin sat from the threshold — keyed by metric name plus
an optional node label. Events flowing through the tracing bus
(:mod:`repro.obs.events`) increment their event counters automatically;
instrumented code can additionally record gauges and histogram
observations directly.

Design constraints, in order:

* **determinism** — snapshots serialise with sorted keys and contain
  only values derived from simulation state, never host state, so two
  runs of the same seed produce byte-identical snapshots;
* **mergeability** — the sweep orchestrator rolls per-job snapshots up
  into one per-sweep aggregate (counters and histogram summaries add,
  gauges keep the last write), so ``repro sweep`` artifacts carry
  beacon/rejection/re-election totals alongside the CSVs;
* **cheapness** — a histogram is a running summary (count/sum/min/max),
  not a bucketed distribution: O(1) memory per metric.

Naming convention (see ``docs/observability.md``): dotted
``<subsystem>.<quantity>`` with an explicit unit suffix where one
applies, e.g. ``guard.reject_margin_us``. Auto-derived event counters
are ``events.<event_name>``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple


def _key(name: str, node: Optional[int]) -> str:
    """Flat string key: ``name`` or ``name|node=<id>``."""
    return name if node is None else f"{name}|node={node}"


@dataclass
class HistogramSummary:
    """Running summary statistics of one observed quantity."""

    count: int = 0
    total: float = 0.0
    min: float = float("inf")
    max: float = float("-inf")

    def observe(self, value: float) -> None:
        """Fold one observation into the summary."""
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def to_dict(self) -> Dict[str, float]:
        """JSON-able summary (``sum`` rounded so merges stay stable)."""
        return {
            "count": self.count,
            "sum": round(self.total, 9),
            "min": self.min,
            "max": self.max,
        }


class MetricsRegistry:
    """Per-run metric accumulation (counters / gauges / histograms)."""

    def __init__(self) -> None:
        self._counters: Dict[str, int] = {}
        self._gauges: Dict[str, float] = {}
        self._histograms: Dict[str, HistogramSummary] = {}

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    def inc(self, name: str, node: Optional[int] = None, by: int = 1) -> None:
        """Increment counter ``name`` (optionally per-node) by ``by``."""
        key = _key(name, node)
        self._counters[key] = self._counters.get(key, 0) + by

    def set_gauge(self, name: str, value: float, node: Optional[int] = None) -> None:
        """Set gauge ``name`` to ``value`` (last write wins)."""
        self._gauges[_key(name, node)] = value

    def observe(self, name: str, value: float, node: Optional[int] = None) -> None:
        """Add one observation to histogram ``name``."""
        key = _key(name, node)
        hist = self._histograms.get(key)
        if hist is None:
            hist = self._histograms[key] = HistogramSummary()
        hist.observe(float(value))

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------

    def counter(self, name: str, node: Optional[int] = None) -> int:
        """Current value of a counter (0 if never incremented)."""
        return self._counters.get(_key(name, node), 0)

    def counter_total(self, name: str) -> int:
        """Sum of a counter over every node label (plus the unlabelled)."""
        prefix = f"{name}|node="
        return sum(
            value
            for key, value in self._counters.items()
            if key == name or key.startswith(prefix)
        )

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges) + len(self._histograms)

    def snapshot(self) -> Dict[str, Any]:
        """JSON-able, deterministically ordered state of the registry."""
        return {
            "counters": {k: self._counters[k] for k in sorted(self._counters)},
            "gauges": {k: self._gauges[k] for k in sorted(self._gauges)},
            "histograms": {
                k: self._histograms[k].to_dict()
                for k in sorted(self._histograms)
            },
        }


def snapshot_rows(snapshot: Dict[str, Any]) -> List[Tuple[str, str, str, float]]:
    """Flatten a snapshot into deterministic ``(section, metric, field,
    value)`` rows — counters, then gauges, then histograms, each sorted
    by metric key. ``repro analyze`` renders sweep metrics roll-ups from
    these rows, so their order (and therefore the emitted table bytes)
    is a pure function of the snapshot's contents."""
    rows: List[Tuple[str, str, str, float]] = []
    for key in sorted(snapshot.get("counters", {})):
        rows.append(("counter", key, "count", float(snapshot["counters"][key])))
    for key in sorted(snapshot.get("gauges", {})):
        rows.append(("gauge", key, "value", float(snapshot["gauges"][key])))
    for key in sorted(snapshot.get("histograms", {})):
        summary = snapshot["histograms"][key]
        for stat_field in ("count", "sum", "min", "max"):
            rows.append(("histogram", key, stat_field, float(summary[stat_field])))
    return rows


def merge_snapshots(total: Dict[str, Any], part: Dict[str, Any]) -> Dict[str, Any]:
    """Fold ``part`` into ``total`` (both :meth:`MetricsRegistry.snapshot`
    shaped); returns ``total``. Counters and histogram summaries add;
    gauges keep the later write. The sweep orchestrator uses this for the
    per-sweep roll-up."""
    counters = total.setdefault("counters", {})
    for key in sorted(part.get("counters", {})):
        counters[key] = counters.get(key, 0) + part["counters"][key]
    gauges = total.setdefault("gauges", {})
    for key in sorted(part.get("gauges", {})):
        gauges[key] = part["gauges"][key]
    histograms = total.setdefault("histograms", {})
    for key in sorted(part.get("histograms", {})):
        summary = part["histograms"][key]
        merged = histograms.get(key)
        if merged is None:
            histograms[key] = dict(summary)
        else:
            merged["count"] += summary["count"]
            merged["sum"] = round(merged["sum"] + summary["sum"], 9)
            merged["min"] = min(merged["min"], summary["min"])
            merged["max"] = max(merged["max"], summary["max"])
    return total
