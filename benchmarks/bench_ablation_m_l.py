"""Ablation: the (m, l) design space and Lemma 2's optimal m = l + 3.

Sweeps m for l = 1 around a forced reference change and checks the
analysis' claim that the transition error is smallest near m = l + 3,
while steady-state error and convergence latency trade off as Table 1
and Lemma 1 describe.
"""

from __future__ import annotations

from conftest import paper_rows

from repro.core.adjustment import optimal_m, reference_change_ratio
from repro.core.config import SstspConfig
from repro.experiments.scenarios import quick_spec
from repro.fastlane import run_sstsp_vectorized
from repro.network.churn import REFERENCE_MARKER, ChurnEvent
from repro.network.ibss import build_network
from repro.sim.units import S


def _transition_error(m: int, l: int = 1, seed: int = 4) -> dict:
    spec = quick_spec(15, seed=seed, duration_s=25.0)
    config = SstspConfig(m=m, l=l)
    runner = build_network("sstsp", spec, sstsp_config=config)
    runner.churn.add(ChurnEvent(120, "leave", (REFERENCE_MARKER,)))
    trace = runner.run().trace
    return {
        "m": m,
        "transition": float(trace.window(12.0 * S, 14.0 * S).max_diff_us.max()),
        "settled": float(trace.window(20.0 * S, 25.0 * S).max_diff_us.max()),
    }


def test_optimal_m_for_reference_changes(benchmark):
    rows = benchmark.pedantic(
        lambda: [_transition_error(m) for m in (1, 2, 4, 6)],
        rounds=1,
        iterations=1,
    )
    by_m = {row["m"]: row for row in rows}
    # Lemma 2: |(m-l-3)/m| is 2/4ths at m=2, 0 at m=4, 1/3 at m=6
    assert optimal_m(1) == 4
    assert abs(reference_change_ratio(4, 1)) < abs(reference_change_ratio(2, 1))
    # measured: m=4 transitions no worse than m=1 (which amplifies by l+2)
    assert by_m[4]["transition"] <= by_m[1]["transition"] * 1.5
    # all settle back to paper accuracy (m=1 is the paper's own noisiest
    # row - Table 1 reports 12us there vs 6us at m>=3)
    assert all(row["settled"] < 20.0 for row in rows)
    assert by_m[4]["settled"] < by_m[1]["settled"]
    paper_rows(
        benchmark,
        "ablation: reference-change error vs m (l=1)",
        [
            f"m={row['m']}: transition={row['transition']:.1f}us "
            f"settled={row['settled']:.1f}us "
            f"(Lemma 2 ratio {reference_change_ratio(row['m'], 1):+.2f})"
            for row in rows
        ],
    )


def test_l_trades_robustness_for_latency(benchmark):
    """Larger l tolerates beacon loss (fewer spurious elections) at the
    price of slower reaction to a real reference loss."""

    def sweep():
        results = {}
        for l in (1, 3):
            spec = quick_spec(60, seed=2, duration_s=30.0)
            config = SstspConfig(l=l, m=l + 3)
            results[l] = run_sstsp_vectorized(spec, config=config)
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    # spurious elections (reference changes after bootstrap) drop with l
    assert results[3].reference_changes <= results[1].reference_changes
    paper_rows(
        benchmark,
        "ablation: l (reference-loss patience)",
        [
            f"l={l}: reference changes={r.reference_changes} "
            f"steady={r.trace.steady_state_error_us():.2f}us"
            for l, r in sorted(results.items())
        ],
    )
