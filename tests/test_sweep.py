"""Tests for the sweep orchestrator: grids, specs, cache, determinism.

The headline property (ISSUE: determinism-under-parallelism) is at the
bottom: the same grid run at ``--workers 1`` and ``--workers 4`` must
produce identical result dicts and byte-identical CSV output, and a
second run against a warm cache must be served entirely from it with
equal values.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.experiments import table1
from repro.sweep import (
    CACHE_SALT,
    JobSpec,
    ResultCache,
    SweepOptions,
    derive_seed,
    expand_grid,
    register_job,
    run_sweep,
)

# --- module-level job functions (worker processes re-import this module
# --- by name, so these must live at module scope) ------------------------


def echo_job(spec: JobSpec):
    return {"params": spec.params_dict(), "seed": spec.derived_seed()}


def boom_job(spec: JobSpec):
    raise ValueError("kaboom")


register_job("test_echo", f"{__name__}:echo_job")
register_job("test_boom", f"{__name__}:boom_job")


# --- grid expansion ------------------------------------------------------


def test_expand_grid_product_order_and_fixed_scalars():
    points = expand_grid({"m": [1, 2], "n": 30, "guard": [0.0, 0.5]})
    # axes in insertion order, last axis fastest, scalars on every point
    assert points == [
        {"m": 1, "n": 30, "guard": 0.0},
        {"m": 1, "n": 30, "guard": 0.5},
        {"m": 2, "n": 30, "guard": 0.0},
        {"m": 2, "n": 30, "guard": 0.5},
    ]


def test_expand_grid_empty_axis_rejected():
    with pytest.raises(ValueError, match="no values"):
        expand_grid({"m": []})


# --- job specs -----------------------------------------------------------


def test_jobspec_identity_ignores_param_order():
    a = JobSpec.make("table1_cell", {"m": 2, "n": 30, "seed": 1})
    b = JobSpec.make("table1_cell", {"seed": 1, "n": 30, "m": 2})
    assert a == b
    assert a.job_key == b.job_key
    assert a.spec_hash(CACHE_SALT) == b.spec_hash(CACHE_SALT)


def test_jobspec_identity_is_sensitive_to_values_and_root_seed():
    base = JobSpec.make("test_echo", {"x": 1})
    assert base.job_key != JobSpec.make("test_echo", {"x": 2}).job_key
    assert base.job_key != JobSpec.make("test_echo", {"x": 1}, root_seed=7).job_key


def test_jobspec_rejects_nested_params():
    with pytest.raises(TypeError, match="flat"):
        JobSpec.make("test_echo", {"x": [[1, 2]]})
    with pytest.raises(TypeError, match="unsupported"):
        JobSpec.make("test_echo", {"x": {"nested": True}})


def test_derive_seed_is_pure_and_63_bit():
    spec = JobSpec.make("test_echo", {"x": 1}, root_seed=42)
    assert spec.derived_seed() == derive_seed(42, spec.job_key)
    assert spec.derived_seed() == spec.derived_seed()
    assert 0 <= spec.derived_seed() < 2**63
    # different jobs under the same root seed get different streams
    other = JobSpec.make("test_echo", {"x": 2}, root_seed=42)
    assert spec.derived_seed() != other.derived_seed()


def test_spec_hash_changes_with_salt():
    spec = JobSpec.make("test_echo", {"x": 1})
    assert spec.spec_hash("salt-a") != spec.spec_hash("salt-b")


# --- result cache --------------------------------------------------------


def test_cache_roundtrip_and_stats(tmp_path):
    cache = ResultCache(str(tmp_path / "cache"))
    spec = JobSpec.make("test_echo", {"x": 1})
    hit, _ = cache.get(spec)
    assert not hit
    path = cache.put(spec, {"value": 11})
    assert os.path.exists(path)
    hit, value = cache.get(spec)
    assert hit and value == {"value": 11}
    assert (cache.stats.hits, cache.stats.misses, cache.stats.writes) == (1, 1, 1)


def test_cache_salt_invalidates_old_entries(tmp_path):
    root = str(tmp_path / "cache")
    spec = JobSpec.make("test_echo", {"x": 1})
    ResultCache(root, salt="v1").put(spec, "old")
    hit, _ = ResultCache(root, salt="v2").get(spec)
    assert not hit, "a salt bump must never serve stale results"


def test_cache_corrupt_entry_counts_as_miss(tmp_path):
    cache = ResultCache(str(tmp_path / "cache"))
    spec = JobSpec.make("test_echo", {"x": 1})
    cache.put(spec, "good")
    with open(cache.path_for(spec), "wb") as fh:
        fh.write(b"not a pickle")
    hit, _ = cache.get(spec)
    assert not hit


# --- orchestrator mechanics (serial path, cheap echo jobs) ---------------


def _echo_specs(count=4):
    return [JobSpec.make("test_echo", {"x": i}, root_seed=9) for i in range(count)]


def test_run_sweep_returns_results_in_spec_order():
    result = run_sweep("echo", _echo_specs())
    assert [v["params"]["x"] for v in result.values] == [0, 1, 2, 3]
    assert result.stats.executed == 4 and result.stats.cache_hits == 0


def test_run_sweep_second_run_is_all_cache_hits(tmp_path):
    options = SweepOptions(cache_dir=str(tmp_path / "cache"))
    cold = run_sweep("echo", _echo_specs(), options)
    warm = run_sweep("echo", _echo_specs(), options)
    assert cold.stats.executed == 4 and cold.stats.cache_hits == 0
    assert warm.stats.executed == 0 and warm.stats.cache_hits == 4
    assert warm.values == cold.values


def test_run_sweep_failure_names_the_job():
    specs = [JobSpec.make("test_boom", {"x": 1})]
    with pytest.raises(RuntimeError, match="sweep job failed: test_boom"):
        run_sweep("boom", specs)


def test_run_sweep_writes_jsonl_run_log(tmp_path):
    log_path = str(tmp_path / "run.jsonl")
    run_sweep("echo", _echo_specs(2), SweepOptions(log_path=log_path))
    records = [json.loads(line) for line in open(log_path, encoding="utf-8")]
    assert [r["event"] for r in records] == ["sweep_start", "job", "job", "sweep_end"]
    assert records[0]["workers"] == 1
    assert all(r["cache"] == "miss" for r in records[1:3])
    assert records[-1]["executed"] == 2


def test_unknown_job_kind_is_a_clear_error():
    with pytest.raises(RuntimeError, match="sweep job failed"):
        run_sweep("nope", [JobSpec.make("no_such_kind", {})])


# --- determinism under parallelism (the satellite contract) --------------


_GRID = dict(m_values=(1, 2), n=16, duration_s=5.0, seed=3, replicas=1)


def _rows_and_csv(monkeypatch, tmp_path, tag, sweep):
    out_dir = tmp_path / tag
    monkeypatch.setenv("SSTSP_RESULTS_DIR", str(out_dir))
    rows = table1.run(sweep=sweep, **_GRID)
    csv_path = table1.save_rows_csv(rows)
    with open(csv_path, "rb") as fh:
        return rows, fh.read()


def test_table1_identical_across_worker_counts(monkeypatch, tmp_path):
    serial_rows, serial_csv = _rows_and_csv(
        monkeypatch, tmp_path, "serial", SweepOptions(workers=1)
    )
    parallel_rows, parallel_csv = _rows_and_csv(
        monkeypatch, tmp_path, "parallel", SweepOptions(workers=4)
    )
    assert parallel_rows == serial_rows
    assert parallel_csv == serial_csv, "CSV bytes must not depend on worker count"


# --- observability: per-job traces, metrics roll-up, profiling ----------


def _quick_specs(count=2):
    return [
        JobSpec.make(
            "scenario_trace",
            {"protocol": "sstsp", "lane": "vec", "scenario": "quick",
             "n": 5, "m": 4, "seed": s},
            root_seed=s,
        )
        for s in range(1, count + 1)
    ]


def _trace_files(trace_dir):
    return sorted(os.listdir(trace_dir))


def test_trace_dir_writes_one_jsonl_per_executed_job(tmp_path):
    trace_dir = tmp_path / "traces"
    log_path = tmp_path / "run.jsonl"
    specs = _quick_specs()
    plain = run_sweep("quick", specs)
    traced = run_sweep(
        "quick", specs,
        SweepOptions(trace_dir=str(trace_dir), log_path=str(log_path)),
    )
    # tracing is pure observation: the results are unchanged
    assert [
        (list(v["trace"].to_rows()), v["reference_changes"])
        for v in traced.values
    ] == [
        (list(v["trace"].to_rows()), v["reference_changes"])
        for v in plain.values
    ]
    files = _trace_files(trace_dir)
    assert files == sorted(
        f"{s.kind}-{s.spec_hash()[:16]}.jsonl" for s in specs
    )
    records = [json.loads(line) for line in open(log_path, encoding="utf-8")]
    obs = [r for r in records if r["event"] == "job_obs"]
    assert sorted(r["seq"] for r in obs) == [0, 1]
    assert all(r["events"] > 0 for r in obs)
    # the sweep_end record rolls the per-job counters up
    end = records[-1]
    assert end["event"] == "sweep_end"
    total = sum(
        v for k, v in end["metrics"]["counters"].items()
        if k.startswith("events.")
    )
    assert total == sum(r["events"] for r in obs)


def test_traces_byte_identical_across_worker_counts(tmp_path):
    specs = _quick_specs()
    dirs = {}
    for workers in (1, 2):
        trace_dir = tmp_path / f"w{workers}"
        run_sweep(
            "quick", specs, SweepOptions(workers=workers, trace_dir=str(trace_dir))
        )
        dirs[workers] = trace_dir
    assert _trace_files(dirs[1]) == _trace_files(dirs[2])
    for name in _trace_files(dirs[1]):
        with open(dirs[1] / name, "rb") as a, open(dirs[2] / name, "rb") as b:
            assert a.read() == b.read(), f"trace {name} differs across workers"


def test_cache_hits_produce_no_trace(tmp_path):
    specs = _quick_specs()
    options = SweepOptions(
        cache_dir=str(tmp_path / "cache"), trace_dir=str(tmp_path / "t1")
    )
    run_sweep("quick", specs, options)
    warm = run_sweep(
        "quick", specs,
        SweepOptions(
            cache_dir=str(tmp_path / "cache"), trace_dir=str(tmp_path / "t2")
        ),
    )
    assert warm.stats.cache_hits == len(specs)
    assert _trace_files(tmp_path / "t2") == []


def test_run_log_closes_and_keeps_sweep_end_on_failure(tmp_path):
    log_path = tmp_path / "run.jsonl"
    specs = [JobSpec.make("test_echo", {"x": 1}), JobSpec.make("test_boom", {})]
    with pytest.raises(RuntimeError, match="test_boom"):
        run_sweep("boom", specs, SweepOptions(log_path=str(log_path)))
    # the context manager flushed and closed the log despite the raise,
    # and the finally-block accounting record made it out
    records = [json.loads(line) for line in open(log_path, encoding="utf-8")]
    assert records[0]["event"] == "sweep_start"
    assert records[-1]["event"] == "sweep_end"
    assert records[-1]["executed"] == 1


def test_profile_totals_reach_the_run_log(tmp_path):
    log_path = tmp_path / "run.jsonl"
    run_sweep(
        "echo", _echo_specs(2),
        SweepOptions(
            profile=True,
            log_path=str(log_path),
            cache_dir=str(tmp_path / "cache"),
        ),
    )
    records = [json.loads(line) for line in open(log_path, encoding="utf-8")]
    profile = records[-1]["profile"]
    assert set(profile) >= {"cache", "engine", "log"}
    assert all(v >= 0.0 for v in profile.values())


def test_unprofiled_sweep_log_has_no_profile_record(tmp_path):
    log_path = tmp_path / "run.jsonl"
    run_sweep("echo", _echo_specs(1), SweepOptions(log_path=str(log_path)))
    records = [json.loads(line) for line in open(log_path, encoding="utf-8")]
    assert "profile" not in records[-1]


def test_table1_warm_cache_reproduces_results(monkeypatch, tmp_path):
    options = SweepOptions(workers=1, cache_dir=str(tmp_path / "cache"))
    cold_rows, cold_csv = _rows_and_csv(monkeypatch, tmp_path, "cold", options)
    warm_rows, warm_csv = _rows_and_csv(monkeypatch, tmp_path, "warm", options)
    assert warm_rows == cold_rows
    assert warm_csv == cold_csv

    # and the second sweep really was served from the cache
    specs = table1.cell_specs(
        _GRID["m_values"], _GRID["n"], _GRID["duration_s"],
        _GRID["seed"], _GRID["replicas"],
    )
    result = run_sweep("table1", specs, options)
    assert result.stats.cache_hits == len(specs)
    assert result.stats.executed == 0
