"""Fig. 3 bench: TSF under the channel attacker.

Shape under test: during the attack the error grows roughly linearly with
attack duration (free-running drift: the paper reaches ~20000 us over
200 s; at this bench's 20 s window the same slope yields ~1/10 of that),
then recovers once the attack stops.
"""

from __future__ import annotations

from conftest import paper_rows

from repro.experiments.scenarios import quick_spec
from repro.fastlane import run_tsf_vectorized
from repro.network.ibss import AttackerSpec
from repro.sim.units import S


def _run_fig3():
    spec = quick_spec(
        100, seed=1, duration_s=60.0,
        attacker=AttackerSpec(start_s=20.0, end_s=40.0),
    )
    return run_tsf_vectorized(spec)


def test_fig3_tsf_under_attack(benchmark):
    result = benchmark.pedantic(_run_fig3, rounds=1, iterations=1)
    trace = result.trace
    before = float(trace.window(10 * S, 20 * S).max_diff_us.max())
    during = float(trace.window(22 * S, 40 * S).max_diff_us.max())
    after = float(trace.window(50 * S, 61 * S).max_diff_us.max())
    assert during > 5 * before           # the attack desynchronizes TSF
    assert during > 1_000.0              # drift-scale, not contention-scale
    assert after < during / 3            # recovery after the window
    paper_rows(
        benchmark,
        "fig3: TSF + attacker (100 nodes)",
        [
            f"before={before:.0f}us during={during:.0f}us after={after:.0f}us",
            "paper: rises to ~20000us over a 200s attack; slope here "
            f"~{during / 20:.0f}us/s of attack",
        ],
    )
