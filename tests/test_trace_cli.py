"""The ``repro trace`` CLI: summary, filter, diff, convergence.

Synthetic traces keep these tests fast and make the expected numbers
obvious; one test runs ``summary`` over the committed golden fixture so
the CLI is exercised against real simulator output too.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.obs.cli import main as trace_main

GOLDEN = Path(__file__).parent / "data" / "golden_trace_n5.jsonl"


def write_trace(path, records):
    lines = [{"event": "trace_header", "schema": 1, "seq": 0}]
    for seq, record in enumerate(records, start=1):
        lines.append({"seq": seq, **record})
    path.write_text(
        "".join(json.dumps(line, sort_keys=True) + "\n" for line in lines)
    )
    return str(path)


#: One period = 100 ms; a re-election at 300 ms whose new reference first
#: beacons one period later (well inside (l+2) = 4 periods).
SMALL = [
    {"event": "beacon_tx", "t_us": 100_000.0, "node": 0, "period": 1},
    {"event": "beacon_rx", "t_us": 100_050.0, "node": 1, "src": 0, "period": 1},
    {"event": "guard_reject", "t_us": 150_000.0, "node": 1, "diff_us": 99.0,
     "threshold_us": 25.0},
    {"event": "beacon_tx", "t_us": 200_000.0, "node": 0, "period": 2},
    {"event": "mutesla_reject", "t_us": 210_000.0, "node": 1, "sender": 0,
     "interval": 2, "reason": "bad_mac"},
    {"event": "mutesla_auth", "t_us": 220_000.0, "node": 1, "sender": 0,
     "interval": 1},
    {"event": "churn_leave", "t_us": 300_000.0, "node": 0, "period": 3},
    {"event": "reference_change", "t_us": 300_000.0, "old_ref": 0,
     "new_ref": 2, "period": 3},
    {"event": "beacon_tx", "t_us": 400_000.0, "node": 2, "period": 4},
]


class TestSummary:
    def test_counts_and_highlights(self, tmp_path, capsys):
        path = write_trace(tmp_path / "t.jsonl", SMALL)
        assert trace_main(["summary", path]) == 0
        out = capsys.readouterr().out
        assert "events: 9" in out
        assert "beacon_tx" in out and "[network]" in out
        assert "guard rejections: 1" in out
        assert "node 1: 1" in out
        assert "1 authenticated, 0 deferred, 1 rejected" in out
        assert "rejected[bad_mac]: 1" in out
        assert "reference changes: 1" in out
        assert "node 0 -> node 2" in out
        assert "1 churn leaves" in out

    def test_golden_fixture_summary(self, capsys):
        assert trace_main(["summary", str(GOLDEN)]) == 0
        out = capsys.readouterr().out
        assert "events: 416" in out
        assert "contention_win" in out


class TestFilter:
    def test_by_event_and_node(self, tmp_path, capsys):
        path = write_trace(tmp_path / "t.jsonl", SMALL)
        assert trace_main(["filter", path, "--event", "beacon_tx"]) == 0
        captured = capsys.readouterr()
        rows = [json.loads(line) for line in captured.out.splitlines()]
        assert [r["node"] for r in rows] == [0, 0, 2]
        assert "matched 3 events" in captured.err

        assert trace_main(
            ["filter", path, "--event", "beacon_tx", "--node", "2"]
        ) == 0
        rows = [json.loads(l) for l in capsys.readouterr().out.splitlines()]
        assert len(rows) == 1 and rows[0]["t_us"] == 400_000.0

    def test_time_window(self, tmp_path, capsys):
        path = write_trace(tmp_path / "t.jsonl", SMALL)
        assert trace_main(
            ["filter", path, "--after-us", "150000", "--before-us", "300000"]
        ) == 0
        rows = [json.loads(l) for l in capsys.readouterr().out.splitlines()]
        assert [r["event"] for r in rows] == [
            "guard_reject", "beacon_tx", "mutesla_reject", "mutesla_auth",
        ]


class TestDiff:
    def test_identical_ignoring_seq(self, tmp_path, capsys):
        a = write_trace(tmp_path / "a.jsonl", SMALL)
        # same events, different seq numbering must still compare equal
        renumbered = [{"seq": 100 + i, **r} for i, r in enumerate(SMALL)]
        b = tmp_path / "b.jsonl"
        b.write_text(
            json.dumps({"event": "trace_header", "schema": 1, "seq": 0}) + "\n"
            + "".join(json.dumps(r, sort_keys=True) + "\n" for r in renumbered)
        )
        assert trace_main(["diff", a, str(b)]) == 0
        assert "identical: 9 events" in capsys.readouterr().out

    def test_differing_traces_exit_one(self, tmp_path, capsys):
        a = write_trace(tmp_path / "a.jsonl", SMALL)
        mutated = [dict(r) for r in SMALL]
        mutated[0]["t_us"] = 999_999.0
        b = write_trace(tmp_path / "b.jsonl", mutated)
        assert trace_main(["diff", a, b]) == 1
        out = capsys.readouterr().out
        assert "@ event 1:" in out
        assert "traces differ" in out

    def test_length_mismatch_exit_one(self, tmp_path, capsys):
        a = write_trace(tmp_path / "a.jsonl", SMALL)
        b = write_trace(tmp_path / "b.jsonl", SMALL[:-1])
        assert trace_main(["diff", a, b]) == 1
        assert "<absent>" in capsys.readouterr().out

    def test_limit_caps_output(self, tmp_path, capsys):
        a = write_trace(tmp_path / "a.jsonl", SMALL)
        mutated = [{**r, "t_us": r.get("t_us", 0.0) + 1.0} for r in SMALL]
        b = write_trace(tmp_path / "b.jsonl", mutated)
        assert trace_main(["diff", a, b, "--limit", "2"]) == 1
        assert "stopping after 2 differences" in capsys.readouterr().out


class TestConvergence:
    def test_within_bound(self, tmp_path, capsys):
        path = write_trace(tmp_path / "t.jsonl", SMALL)
        # gap = 100 ms = 1 period <= (l+2) = 4 with the inferred period
        assert trace_main(["convergence", path]) == 0
        out = capsys.readouterr().out
        assert "[OK]" in out
        assert "0 outside the (l+2) bound" in out

    def test_violation_exits_one(self, tmp_path, capsys):
        records = [dict(r) for r in SMALL]
        records[-1]["t_us"] = 900_000.0  # 6 periods after the re-election
        path = write_trace(tmp_path / "t.jsonl", records)
        assert trace_main(["convergence", path, "--period-us", "100000"]) == 1
        out = capsys.readouterr().out
        assert "[VIOLATES]" in out
        assert "1 outside the (l+2) bound" in out

    def test_larger_l_admits_the_same_gap(self, tmp_path, capsys):
        records = [dict(r) for r in SMALL]
        records[-1]["t_us"] = 900_000.0
        path = write_trace(tmp_path / "t.jsonl", records)
        assert trace_main(
            ["convergence", path, "--period-us", "100000", "--l", "5"]
        ) == 0
        assert "[OK]" in capsys.readouterr().out

    def test_unresolved_reference_exits_one(self, tmp_path, capsys):
        records = SMALL[:-1]  # new reference never beacons
        path = write_trace(tmp_path / "t.jsonl", records)
        assert trace_main(["convergence", path]) == 1
        assert "never beaconed" in capsys.readouterr().out

    def test_no_changes_is_clean(self, tmp_path, capsys):
        path = write_trace(tmp_path / "t.jsonl", SMALL[:2])
        assert trace_main(["convergence", path]) == 0
        assert "no reference changes" in capsys.readouterr().out

    def test_golden_fixture_convergence(self, capsys):
        # the seeded 5-node run has no churn, so its single election at
        # bootstrap (if any) must satisfy the bound; exit must be 0
        assert trace_main(["convergence", str(GOLDEN)]) == 0


class TestDispatch:
    def test_reachable_via_repro_entry_point(self, tmp_path, capsys):
        from repro.experiments.cli import main as repro_main

        path = write_trace(tmp_path / "t.jsonl", SMALL)
        assert repro_main(["trace", "summary", path]) == 0
        assert "events: 9" in capsys.readouterr().out

    def test_unknown_subcommand_rejected(self):
        with pytest.raises(SystemExit) as excinfo:
            trace_main(["frobnicate"])
        assert excinfo.value.code == 2
