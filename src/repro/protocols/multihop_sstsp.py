"""SSTSP relaying as a :class:`MultiHopProtocol` (the reference scheme).

This is the paper's protocol extended to multi-hop, verbatim from the
original monolithic ``multihop/runner.py`` (the refactor-parity fixtures
pin bit-identity): one root beacons every BP; every synchronized node at
hop ``h`` relays inside the ``h``-th segment of the beacon window (small
random backoff inside the segment, so same-hop relayers decorrelate),
letting the time wave cross the whole diameter within one BP.

Receivers run the unchanged SSTSP pipeline against their best upstream
(lowest hop, then earliest): per-relayer uTESLA material (modeled backend
semantics), the guard time, and the (k, b) slewing of equations (2)-(5) —
with one generalisation: the convergence target extrapolates the
*upstream's* timestamp grid (``ts1 + (j + m - j1) * BP``) instead of the
global ``T^{j+m}`` grid, because a relay's emission instant includes its
hop segment and backoff. For the root's direct children the two coincide.

Trust model (documented limit, inherited from delegating through
relayers): uTESLA authenticates *who relayed*, not that the relayed value
is honest; a compromised relayer can therefore shift its whole subtree —
but only within the guard time per beacon, exactly the paper's insider
bound, now per subtree.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.clocks.adjusted import AdjustedClock, MonotonicityError
from repro.clocks.chain import ClockChain
from repro.core.adjustment import (
    AdjustmentSample,
    DegenerateSamplesError,
    solve_adjustment,
)
from repro.core.config import SstspConfig
from repro.network.ibss import ScenarioSpec, build_sstsp_network
from repro.obs.events import emit
from repro.phy.params import (
    SSTSP_BEACON_AIRTIME_SLOTS,
    SSTSP_BEACON_BYTES,
    PhyParams,
)
from repro.protocols.multihop_base import (
    MultiHopContext,
    MultiHopFrame,
    MultiHopProtocol,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.multihop.runner import MultiHopSpec
    from repro.network.runner import NetworkRunner


class _RotationTable:
    """Relay-rotation phase assignments, shared by a protocol family.

    Keyed ``(node, hop, cycle)`` so a station is re-colored when its hop
    (and thus its conflict set) changes.
    """

    __slots__ = ("phase",)

    def __init__(self) -> None:
        self.phase: Dict[Tuple[int, Optional[int], int], int] = {}


class SstspRelayProtocol(MultiHopProtocol):
    """One station's SSTSP relay driver."""

    protocol_name = "sstsp"
    beacon_bytes = SSTSP_BEACON_BYTES
    beacon_airtime_slots = SSTSP_BEACON_AIRTIME_SLOTS

    def __init__(
        self,
        node_id: int,
        chain: ClockChain,
        spec: "MultiHopSpec",
        rotation: Optional[_RotationTable] = None,
    ) -> None:
        super().__init__(node_id, chain, spec)
        self._rotation = rotation if rotation is not None else _RotationTable()
        self.samples: List[AdjustmentSample] = []
        self.pending: Optional[Tuple[int, float, float]] = None

    @classmethod
    def build(
        cls, spec: "MultiHopSpec", chains: Sequence[ClockChain]
    ) -> List[MultiHopProtocol]:
        rotation = _RotationTable()
        return [cls(i, chain, spec, rotation) for i, chain in enumerate(chains)]

    def reset_sync(self) -> None:
        super().reset_sync()
        self.samples.clear()
        self.pending = None

    # ------------------------------------------------------------------
    # Transmission
    # ------------------------------------------------------------------

    def begin_period(self, period: int, ctx: MultiHopContext) -> Optional[float]:
        spec = self.spec
        if self.node_id == ctx.root:
            return 0.0
        if ctx.orphan_election and self.hop == 1 and self.silent >= spec.l:
            # orphaned children of a departed root: contend in segment 0
            slot = int(ctx.slot_rng.integers(0, self._backoff_range()))
            return slot * spec.slot_time_us
        if (
            self.hop is not None
            and self.hop >= 1
            and self.adjustments >= 1
            and self._relay_turn(period, ctx)
        ):
            slot = int(ctx.slot_rng.integers(0, self._backoff_range()))
            return (self.hop * spec.hop_stride_slots + slot) * spec.slot_time_us
        return None

    def make_frame(
        self, period: int, delay_us: float, tx_true: float, ctx: MultiHopContext
    ) -> MultiHopFrame:
        # normalized reference: the sender's clock reads exactly
        # nominal + delay at tx, so its T^j estimate is ``nominal``
        nominal = period * self.spec.beacon_period_us
        hop = (
            0
            if self.node_id == ctx.root
            else (self.hop if self.hop is not None else 0)
        )
        return MultiHopFrame(
            sender=self.node_id,
            hop=hop,
            interval=period,
            tx_true=tx_true,
            timestamp=nominal,
            delay_us=delay_us,
        )

    def _backoff_range(self) -> int:
        """Backoff slots usable inside a hop segment without bleeding the
        transmission into the next segment."""
        return max(1, self.spec.hop_stride_slots - self.spec.airtime_slots)

    def _relay_turn(self, period: int, ctx: MultiHopContext) -> bool:
        """Relay scheduling with deterministic same-hop rotation.

        With every same-hop station relaying every BP, dense neighbourhoods
        collide persistently; with *random* thinning, receivers keep
        flipping upstreams (each flip resets their sample history). A
        deterministic rotation - each station relays every K-th period at
        a fixed (randomly drawn, then frozen) phase - cuts collisions while
        keeping each upstream's beacons periodic, so downstream sample
        pairs stay within the pair-gap limit.

        The rotation counts same-hop stations over the *two-hop*
        neighbourhood: hidden terminals (same-hop stations out of carrier-
        sense range but sharing a receiver) are exactly the pairs that
        carrier sensing cannot separate.
        """
        spec = self.spec
        if spec.relay_probability < 1.0:
            return ctx.slot_rng.random() < spec.relay_probability
        same_hop = sum(
            1
            for other in spec.topology.two_hop_neighbors(self.node_id)
            if ctx.is_present(other) and ctx.state_of(other).hop == self.hop
        )
        if same_hop == 0:
            return True
        cycle = min(4, 1 + same_hop)
        return period % cycle == self._relay_phase_for(cycle, ctx)

    def _relay_phase_for(self, cycle: int, ctx: MultiHopContext) -> int:
        """Greedy phase coloring over the same-hop/2-hop conflict graph.

        Two hidden same-hop stations with *equal* fixed phases would
        collide forever at their common receivers; purely random per-period
        draws starve dense neighbourhoods instead. Greedily picking the
        phase least used by already-colored conflicting stations keeps
        relaying periodic (downstream sample pairs stay fresh) while
        resolving the permanent-collision cases. Phases are re-colored
        when a station's hop (and thus its conflict set) changes.
        """
        table = self._rotation.phase
        key = (self.node_id, self.hop, cycle)
        phase = table.get(key)
        if phase is not None:
            return phase
        used = [0] * cycle
        for other in self.spec.topology.two_hop_neighbors(self.node_id):
            other_state = ctx.state_of(other)
            if other_state.hop != self.hop:
                continue
            other_phase = table.get((other, other_state.hop, cycle))
            if other_phase is not None:
                used[other_phase] += 1
        least = min(used)
        candidates = [p for p, count in enumerate(used) if count == least]
        phase = candidates[self.node_id % len(candidates)]
        table[key] = phase
        return phase

    # ------------------------------------------------------------------
    # Reception
    # ------------------------------------------------------------------

    def on_receptions(
        self, period: int, decoded: List[MultiHopFrame], ctx: MultiHopContext
    ) -> bool:
        spec = self.spec
        # Upstream selection: stick with the current upstream whenever
        # its beacon decoded (switching resets the sample history);
        # switch only to a strictly better hop, or when the current
        # upstream went quiet.
        decoded.sort(key=lambda tx: (tx.hop, tx.tx_true))
        best = decoded[0]
        current = next(
            (tx for tx in decoded if tx.sender == self.upstream), None
        )
        if current is not None and best.hop >= current.hop:
            chosen = current
        elif current is not None and best.hop < current.hop:
            chosen = best  # strictly better hop: re-hang
        elif self.upstream is None or self.silent >= 2 * spec.l:
            chosen = best
        else:
            return False  # upstream not heard this period; stay patient
        arrival = chosen.tx_true + ctx.rx_latency_us
        jitter = ctx.sample_timestamp_error()
        # normalise out the sender's deterministic schedule delay (see
        # MultiHopFrame): both sides of the sample sit on the BP grid
        hw = self.chain.hw.read(arrival) - chosen.delay_us
        est = chosen.timestamp + ctx.rx_latency_us + jitter
        local = self.clock.read_current(hw)
        if self.hop is None:
            # first contact: loose initialisation (the coarse phase of
            # a joiner, collapsed to one sample for founding nodes that
            # are loosely synchronized already)
            self.chain.adjusted = AdjustedClock(
                self.clock.k, self.clock.b + (est - local)
            )
            self.hop = chosen.hop + 1
            self.upstream = chosen.sender
            self.silent = 0
            return True
        guard = spec.guard_fine_us + spec.guard_per_hop_us * (chosen.hop + 1)
        if abs(est - local) > guard:
            emit(
                "guard_reject",
                t_us=local,
                node=self.node_id,
                diff_us=abs(est - local),
                threshold_us=guard,
            )
            return False  # guard time: replayed/delayed/forged or far drift
        silent_before = self.silent
        self.silent = 0
        better_hop = chosen.hop + 1 < self.hop
        if chosen.sender != self.upstream:
            if (
                better_hop
                or self.upstream is None
                or silent_before >= 2 * spec.l
            ):
                self.upstream = chosen.sender
                self.hop = chosen.hop + 1
                self.samples.clear()
                self.pending = None
            else:
                return True  # stick with the current upstream
        else:
            self.hop = chosen.hop + 1
        # uTESLA delayed authentication: last period's pending
        # observation from this upstream becomes a sample now
        if self.pending is not None and self.pending[0] < period:
            interval, p_hw, p_est = self.pending
            self.samples.append(AdjustmentSample(interval, p_hw, p_est))
            del self.samples[:-2]
        self.pending = (period, hw, est)
        self._try_adjust(period, hw)
        return True

    def _try_adjust(self, period: int, hw_now: float) -> None:
        spec = self.spec
        if len(self.samples) < 2:
            return
        newest, older = self.samples[-1], self.samples[-2]
        # freshness limits sized to the relay rotation: an upstream on a
        # cycle-4 rotation yields samples up to 4 periods apart
        if period - newest.interval > 6 or newest.interval - older.interval > 9:
            return
        # generalised equation (5): extrapolate the upstream's own grid
        target = newest.ref_timestamp + (
            period + spec.m - newest.interval
        ) * spec.beacon_period_us
        try:
            k, b = solve_adjustment(
                self.clock.k, self.clock.b, hw_now, newest, older, target
            )
        except DegenerateSamplesError:
            return
        if abs(k - 1.0) > spec.k_clamp:
            return
        try:
            self.clock.adjust(k, b, hw_now)
        except MonotonicityError:
            return
        self.adjustments += 1

    # ------------------------------------------------------------------
    # Silence
    # ------------------------------------------------------------------

    def end_period(self, period: int, accepted: bool, ctx: MultiHopContext) -> None:
        spec = self.spec
        if accepted:
            return
        self.silent += 1
        if self.silent > 4 * spec.l and self.upstream is not None:
            # upstream lost: detach and re-acquire from any beacon
            self.samples.clear()
            self.pending = None
            self.upstream = None
        if self.silent > spec.resync_after_periods and self.hop is not None:
            # nothing acceptable heard for a long stretch: this
            # clock has diverged beyond the guard - start over
            self.reset_sync()

    # ------------------------------------------------------------------
    # Single-hop (complete-graph) counterpart
    # ------------------------------------------------------------------

    @classmethod
    def single_hop_lane(
        cls, spec: "MultiHopSpec"
    ) -> Tuple[ScenarioSpec, SstspConfig]:
        """Translate a complete-graph multi-hop spec to the single-hop lane.

        On a complete graph every station hears every other, hop distances
        are all 1 and the relay machinery degenerates to the IBSS election;
        the returned ``(scenario, config)`` pair builds the reference
        :class:`~repro.network.runner.NetworkRunner` with the same clocks,
        channel parameters and protocol constants (the per-hop guard
        collapses to ``guard_fine + guard_per_hop`` - one hop).
        """
        phy = PhyParams(
            slot_time_us=spec.slot_time_us,
            beacon_airtime_slots=spec.airtime_slots,
            propagation_delay_us=spec.propagation_delay_us,
            timestamp_jitter_us=spec.timestamp_jitter_us,
            packet_error_rate=spec.packet_error_rate,
            loss_model=spec.loss_model,
        )
        scenario = ScenarioSpec(
            n=spec.topology.n,
            seed=spec.seed,
            duration_s=spec.duration_s,
            beacon_period_us=spec.beacon_period_us,
            drift_ppm=spec.drift_ppm,
            initial_offset_us=spec.initial_offset_us,
            phy=phy,
        )
        config = SstspConfig(
            beacon_period_us=spec.beacon_period_us,
            slot_time_us=spec.slot_time_us,
            l=spec.l,
            m=spec.m,
            guard_fine_us=spec.guard_fine_us + spec.guard_per_hop_us,
            k_clamp=spec.k_clamp,
            rx_latency_us=(
                spec.airtime_slots * spec.slot_time_us
                + spec.propagation_delay_us
            ),
        )
        return scenario, config

    @classmethod
    def degenerate_runner(cls, spec: "MultiHopSpec") -> Optional["NetworkRunner"]:
        scenario, config = cls.single_hop_lane(spec)
        return build_sstsp_network(scenario, config=config)
