"""Section 3.4 bench: beacon and hash-chain overhead, measured.

Checks the paper's accounting - 56 -> 92-byte beacons with an unchanged
beacon count, and log2(n)-resident hash-chain service via the fractal
traversal - against implementation-measured counters, and times the
traversal itself.
"""

from __future__ import annotations

import math

from conftest import paper_rows

from repro.analysis.overhead import (
    beacon_overhead,
    chain_storage_report,
    receiver_buffer_bytes,
    traffic_overhead,
)
from repro.crypto.fractal import FractalTraversal
from repro.phy.params import OFDM_54MBPS

CHAIN_N = 4096


def test_beacon_overhead_accounting(benchmark):
    def account():
        return (
            beacon_overhead(secure=False, phy=OFDM_54MBPS),
            beacon_overhead(secure=True, phy=OFDM_54MBPS),
            traffic_overhead(1000.0),
        )

    tsf, sstsp, traffic = benchmark(account)
    assert tsf.beacon_bytes == 56 and sstsp.beacon_bytes == 92
    assert sstsp.airtime_us_per_beacon == 63.0 and tsf.airtime_us_per_beacon == 36.0
    assert traffic["ratio"] == 92 / 56
    assert 300 <= receiver_buffer_bytes(2) * 2 <= 500  # paper's 300-500 B band
    paper_rows(
        benchmark,
        "3.4: beacon overhead",
        [
            f"TSF beacon: {tsf.beacon_bytes}B / {tsf.airtime_us_per_beacon:.0f}us airtime",
            f"SSTSP beacon: {sstsp.beacon_bytes}B / {sstsp.airtime_us_per_beacon:.0f}us airtime",
            f"beacon count over 1000s identical: {traffic['beacons']:.0f}",
        ],
    )


def test_fractal_traversal_storage_and_speed(benchmark):
    def traverse():
        trav = FractalTraversal(b"\x42" * 16, CHAIN_N)
        for _ in range(CHAIN_N):
            trav.next()
        return trav

    trav = benchmark(traverse)
    bound = math.ceil(math.log2(CHAIN_N))
    assert trav.max_resident <= bound + 2
    # amortised O(log n) hashes per element
    assert trav.hash_operations <= CHAIN_N * (bound / 2 + 2) + CHAIN_N
    paper_rows(
        benchmark,
        "3.4: fractal hash-chain traversal",
        [
            f"n={CHAIN_N}: resident<= {trav.max_resident} elements "
            f"(paper/[6]: ~log2(n)={bound})",
            f"total hashes={trav.hash_operations} "
            f"({trav.hash_operations / CHAIN_N:.1f}/element, bound "
            f"~{bound / 2 + 2:.1f} amortised + anchor pass)",
        ],
    )


def test_chain_strategy_comparison(benchmark):
    rows = benchmark.pedantic(
        lambda: chain_storage_report(CHAIN_N, samples=128), rounds=1, iterations=1
    )
    by_name = {r.strategy: r for r in rows}
    assert by_name["dense"].resident_elements == CHAIN_N + 1
    assert by_name["seed-only"].resident_elements == 1
    assert by_name["fractal"].resident_elements <= math.ceil(math.log2(CHAIN_N)) + 7
    # fractal does orders of magnitude fewer hashes than seed-only recompute
    assert by_name["fractal"].hash_ops_for_traversal < (
        by_name["seed-only"].hash_ops_for_traversal / 10
    )
    paper_rows(
        benchmark,
        "3.4: chain storage strategies",
        [
            f"{r.strategy}: {r.resident_elements} elements resident, "
            f"{r.hash_ops_for_traversal} hashes for 128 disclosures"
            for r in rows
        ],
    )
