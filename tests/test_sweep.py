"""Tests for the sweep orchestrator: grids, specs, cache, determinism.

The headline property (ISSUE: determinism-under-parallelism) is at the
bottom: the same grid run at ``--workers 1`` and ``--workers 4`` must
produce identical result dicts and byte-identical CSV output, and a
second run against a warm cache must be served entirely from it with
equal values.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.experiments import table1
from repro.sweep import (
    CACHE_SALT,
    FailurePolicy,
    JobSpec,
    ResultCache,
    SweepManifest,
    SweepOptions,
    derive_seed,
    expand_grid,
    register_job,
    run_sweep,
)
from repro.sweep.failpolicy import (
    InjectedFailure,
    parse_injection,
    should_inject,
)
from repro.sweep.jobs import execute_job
from repro.sweep.orchestrator import add_sweep_arguments, sweep_options_from_args
from repro.sweep.spec import derive_backoff_fraction

# --- module-level job functions (worker processes re-import this module
# --- by name, so these must live at module scope) ------------------------


def echo_job(spec: JobSpec):
    return {"params": spec.params_dict(), "seed": spec.derived_seed()}


def boom_job(spec: JobSpec):
    raise ValueError("kaboom")


def sleep_job(spec: JobSpec):
    time.sleep(spec.params_dict().get("sleep_s", 5.0))
    return {"slept": spec.params_dict().get("sleep_s", 5.0)}


def worker_exit_job(spec: JobSpec):
    os._exit(3)  # simulate an OOM-killed / segfaulted worker process


register_job("test_echo", f"{__name__}:echo_job")
register_job("test_boom", f"{__name__}:boom_job")
register_job("test_sleep", f"{__name__}:sleep_job")
register_job("test_exit", f"{__name__}:worker_exit_job")


# --- grid expansion ------------------------------------------------------


def test_expand_grid_product_order_and_fixed_scalars():
    points = expand_grid({"m": [1, 2], "n": 30, "guard": [0.0, 0.5]})
    # axes in insertion order, last axis fastest, scalars on every point
    assert points == [
        {"m": 1, "n": 30, "guard": 0.0},
        {"m": 1, "n": 30, "guard": 0.5},
        {"m": 2, "n": 30, "guard": 0.0},
        {"m": 2, "n": 30, "guard": 0.5},
    ]


def test_expand_grid_empty_axis_rejected():
    with pytest.raises(ValueError, match="no values"):
        expand_grid({"m": []})


# --- job specs -----------------------------------------------------------


def test_jobspec_identity_ignores_param_order():
    a = JobSpec.make("table1_cell", {"m": 2, "n": 30, "seed": 1})
    b = JobSpec.make("table1_cell", {"seed": 1, "n": 30, "m": 2})
    assert a == b
    assert a.job_key == b.job_key
    assert a.spec_hash(CACHE_SALT) == b.spec_hash(CACHE_SALT)


def test_jobspec_identity_is_sensitive_to_values_and_root_seed():
    base = JobSpec.make("test_echo", {"x": 1})
    assert base.job_key != JobSpec.make("test_echo", {"x": 2}).job_key
    assert base.job_key != JobSpec.make("test_echo", {"x": 1}, root_seed=7).job_key


def test_jobspec_rejects_nested_params():
    with pytest.raises(TypeError, match="flat"):
        JobSpec.make("test_echo", {"x": [[1, 2]]})
    with pytest.raises(TypeError, match="unsupported"):
        JobSpec.make("test_echo", {"x": {"nested": True}})


def test_derive_seed_is_pure_and_63_bit():
    spec = JobSpec.make("test_echo", {"x": 1}, root_seed=42)
    assert spec.derived_seed() == derive_seed(42, spec.job_key)
    assert spec.derived_seed() == spec.derived_seed()
    assert 0 <= spec.derived_seed() < 2**63
    # different jobs under the same root seed get different streams
    other = JobSpec.make("test_echo", {"x": 2}, root_seed=42)
    assert spec.derived_seed() != other.derived_seed()


def test_spec_hash_changes_with_salt():
    spec = JobSpec.make("test_echo", {"x": 1})
    assert spec.spec_hash("salt-a") != spec.spec_hash("salt-b")


# --- result cache --------------------------------------------------------


def test_cache_roundtrip_and_stats(tmp_path):
    cache = ResultCache(str(tmp_path / "cache"))
    spec = JobSpec.make("test_echo", {"x": 1})
    hit, _ = cache.get(spec)
    assert not hit
    path = cache.put(spec, {"value": 11})
    assert os.path.exists(path)
    hit, value = cache.get(spec)
    assert hit and value == {"value": 11}
    assert (cache.stats.hits, cache.stats.misses, cache.stats.writes) == (1, 1, 1)


def test_cache_salt_invalidates_old_entries(tmp_path):
    root = str(tmp_path / "cache")
    spec = JobSpec.make("test_echo", {"x": 1})
    ResultCache(root, salt="v1").put(spec, "old")
    hit, _ = ResultCache(root, salt="v2").get(spec)
    assert not hit, "a salt bump must never serve stale results"


def test_cache_corrupt_entry_counts_as_miss_and_is_deleted(tmp_path):
    cache = ResultCache(str(tmp_path / "cache"))
    spec = JobSpec.make("test_echo", {"x": 1})
    cache.put(spec, "good")
    with open(cache.path_for(spec), "wb") as fh:
        fh.write(b"not a pickle")
    hit, _ = cache.get(spec)
    assert not hit
    assert cache.stats.corrupt == 1
    # the poisoned file is gone, so the slot can be rebuilt cleanly
    assert not os.path.exists(cache.path_for(spec))


def test_cache_truncated_entry_is_rebuilt_by_a_sweep(tmp_path):
    """A truncated on-disk entry must not crash the sweep: it reads as a
    miss, the job re-executes, and the entry is rewritten whole."""
    options = SweepOptions(cache_dir=str(tmp_path / "cache"))
    specs = _echo_specs(2)
    cold = run_sweep("corrupt", specs, options)
    cache = ResultCache(str(tmp_path / "cache"))
    path = cache.path_for(specs[0])
    with open(path, "rb") as fh:
        whole = fh.read()
    with open(path, "wb") as fh:
        fh.write(whole[: len(whole) // 2])  # torn write / crashed host
    again = run_sweep("corrupt", specs, options)
    assert again.values == cold.values
    assert again.stats.cache_hits == 1 and again.stats.executed == 1
    hit, value = ResultCache(str(tmp_path / "cache")).get(specs[0])
    assert hit and value == cold.values[0]


# --- orchestrator mechanics (serial path, cheap echo jobs) ---------------


def _echo_specs(count=4):
    return [JobSpec.make("test_echo", {"x": i}, root_seed=9) for i in range(count)]


def test_run_sweep_returns_results_in_spec_order():
    result = run_sweep("echo", _echo_specs())
    assert [v["params"]["x"] for v in result.values] == [0, 1, 2, 3]
    assert result.stats.executed == 4 and result.stats.cache_hits == 0


def test_run_sweep_second_run_is_all_cache_hits(tmp_path):
    options = SweepOptions(cache_dir=str(tmp_path / "cache"))
    cold = run_sweep("echo", _echo_specs(), options)
    warm = run_sweep("echo", _echo_specs(), options)
    assert cold.stats.executed == 4 and cold.stats.cache_hits == 0
    assert warm.stats.executed == 0 and warm.stats.cache_hits == 4
    assert warm.values == cold.values


def test_run_sweep_failure_names_the_job():
    specs = [JobSpec.make("test_boom", {"x": 1})]
    with pytest.raises(RuntimeError, match="sweep job failed: test_boom"):
        run_sweep("boom", specs)


def test_run_sweep_writes_jsonl_run_log(tmp_path):
    log_path = str(tmp_path / "run.jsonl")
    run_sweep("echo", _echo_specs(2), SweepOptions(log_path=log_path))
    records = [json.loads(line) for line in open(log_path, encoding="utf-8")]
    assert [r["event"] for r in records] == ["sweep_start", "job", "job", "sweep_end"]
    assert records[0]["workers"] == 1
    assert all(r["cache"] == "miss" for r in records[1:3])
    assert records[-1]["executed"] == 2


def test_unknown_job_kind_is_a_clear_error():
    with pytest.raises(RuntimeError, match="sweep job failed"):
        run_sweep("nope", [JobSpec.make("no_such_kind", {})])


# --- determinism under parallelism (the satellite contract) --------------


_GRID = dict(m_values=(1, 2), n=16, duration_s=5.0, seed=3, replicas=1)


def _rows_and_csv(monkeypatch, tmp_path, tag, sweep):
    out_dir = tmp_path / tag
    monkeypatch.setenv("SSTSP_RESULTS_DIR", str(out_dir))
    rows = table1.run(sweep=sweep, **_GRID)
    csv_path = table1.save_rows_csv(rows)
    with open(csv_path, "rb") as fh:
        return rows, fh.read()


def test_table1_identical_across_worker_counts(monkeypatch, tmp_path):
    serial_rows, serial_csv = _rows_and_csv(
        monkeypatch, tmp_path, "serial", SweepOptions(workers=1)
    )
    parallel_rows, parallel_csv = _rows_and_csv(
        monkeypatch, tmp_path, "parallel", SweepOptions(workers=4)
    )
    assert parallel_rows == serial_rows
    assert parallel_csv == serial_csv, "CSV bytes must not depend on worker count"


# --- observability: per-job traces, metrics roll-up, profiling ----------


def _quick_specs(count=2):
    return [
        JobSpec.make(
            "scenario_trace",
            {"protocol": "sstsp", "lane": "vec", "scenario": "quick",
             "n": 5, "m": 4, "seed": s},
            root_seed=s,
        )
        for s in range(1, count + 1)
    ]


def _trace_files(trace_dir):
    return sorted(os.listdir(trace_dir))


def test_trace_dir_writes_one_jsonl_per_executed_job(tmp_path):
    trace_dir = tmp_path / "traces"
    log_path = tmp_path / "run.jsonl"
    specs = _quick_specs()
    plain = run_sweep("quick", specs)
    traced = run_sweep(
        "quick", specs,
        SweepOptions(trace_dir=str(trace_dir), log_path=str(log_path)),
    )
    # tracing is pure observation: the results are unchanged
    assert [
        (list(v["trace"].to_rows()), v["reference_changes"])
        for v in traced.values
    ] == [
        (list(v["trace"].to_rows()), v["reference_changes"])
        for v in plain.values
    ]
    files = _trace_files(trace_dir)
    assert files == sorted(
        f"{s.kind}-{s.spec_hash()[:16]}.jsonl" for s in specs
    )
    records = [json.loads(line) for line in open(log_path, encoding="utf-8")]
    obs = [r for r in records if r["event"] == "job_obs"]
    assert sorted(r["seq"] for r in obs) == [0, 1]
    assert all(r["events"] > 0 for r in obs)
    # the sweep_end record rolls the per-job counters up
    end = records[-1]
    assert end["event"] == "sweep_end"
    total = sum(
        v for k, v in end["metrics"]["counters"].items()
        if k.startswith("events.")
    )
    assert total == sum(r["events"] for r in obs)


def test_traces_byte_identical_across_worker_counts(tmp_path):
    specs = _quick_specs()
    dirs = {}
    for workers in (1, 2):
        trace_dir = tmp_path / f"w{workers}"
        run_sweep(
            "quick", specs, SweepOptions(workers=workers, trace_dir=str(trace_dir))
        )
        dirs[workers] = trace_dir
    assert _trace_files(dirs[1]) == _trace_files(dirs[2])
    for name in _trace_files(dirs[1]):
        with open(dirs[1] / name, "rb") as a, open(dirs[2] / name, "rb") as b:
            assert a.read() == b.read(), f"trace {name} differs across workers"


def test_cache_hits_produce_no_trace(tmp_path):
    specs = _quick_specs()
    options = SweepOptions(
        cache_dir=str(tmp_path / "cache"), trace_dir=str(tmp_path / "t1")
    )
    run_sweep("quick", specs, options)
    warm = run_sweep(
        "quick", specs,
        SweepOptions(
            cache_dir=str(tmp_path / "cache"), trace_dir=str(tmp_path / "t2")
        ),
    )
    assert warm.stats.cache_hits == len(specs)
    assert _trace_files(tmp_path / "t2") == []


def test_run_log_closes_and_keeps_sweep_end_on_failure(tmp_path):
    log_path = tmp_path / "run.jsonl"
    specs = [JobSpec.make("test_echo", {"x": 1}), JobSpec.make("test_boom", {})]
    with pytest.raises(RuntimeError, match="test_boom"):
        run_sweep("boom", specs, SweepOptions(log_path=str(log_path)))
    # the context manager flushed and closed the log despite the raise,
    # and the finally-block accounting record made it out
    records = [json.loads(line) for line in open(log_path, encoding="utf-8")]
    assert records[0]["event"] == "sweep_start"
    assert records[-1]["event"] == "sweep_end"
    assert records[-1]["executed"] == 1


def test_profile_totals_reach_the_run_log(tmp_path):
    log_path = tmp_path / "run.jsonl"
    run_sweep(
        "echo", _echo_specs(2),
        SweepOptions(
            profile=True,
            log_path=str(log_path),
            cache_dir=str(tmp_path / "cache"),
        ),
    )
    records = [json.loads(line) for line in open(log_path, encoding="utf-8")]
    profile = records[-1]["profile"]
    assert set(profile) >= {"cache", "engine", "log"}
    assert all(v >= 0.0 for v in profile.values())


def test_unprofiled_sweep_log_has_no_profile_record(tmp_path):
    log_path = tmp_path / "run.jsonl"
    run_sweep("echo", _echo_specs(1), SweepOptions(log_path=str(log_path)))
    records = [json.loads(line) for line in open(log_path, encoding="utf-8")]
    assert "profile" not in records[-1]


def test_table1_warm_cache_reproduces_results(monkeypatch, tmp_path):
    options = SweepOptions(workers=1, cache_dir=str(tmp_path / "cache"))
    cold_rows, cold_csv = _rows_and_csv(monkeypatch, tmp_path, "cold", options)
    warm_rows, warm_csv = _rows_and_csv(monkeypatch, tmp_path, "warm", options)
    assert warm_rows == cold_rows
    assert warm_csv == cold_csv

    # and the second sweep really was served from the cache
    specs = table1.cell_specs(
        _GRID["m_values"], _GRID["n"], _GRID["duration_s"],
        _GRID["seed"], _GRID["replicas"],
    )
    result = run_sweep("table1", specs, options)
    assert result.stats.cache_hits == len(specs)
    assert result.stats.executed == 0


# --- failure policy: pure decision logic ---------------------------------


class TestFailurePolicy:
    def test_attempts_semantics(self):
        assert FailurePolicy(on_error="raise", max_retries=5).attempts == 1
        assert FailurePolicy(on_error="retry", max_retries=2).attempts == 3
        assert FailurePolicy(on_error="quarantine", max_retries=0).attempts == 1

    def test_validation(self):
        with pytest.raises(ValueError, match="on_error"):
            FailurePolicy(on_error="explode")
        with pytest.raises(ValueError, match="max_retries"):
            FailurePolicy(max_retries=-1)
        with pytest.raises(ValueError, match="timeout_s"):
            FailurePolicy(timeout_s=0.0)
        with pytest.raises(ValueError, match="injection"):
            FailurePolicy(inject="no-count-here")

    def test_backoff_is_deterministic_exponential_and_capped(self):
        policy = FailurePolicy(
            on_error="retry", max_retries=8,
            backoff_base_s=1.0, backoff_cap_s=3.0,
        )
        spec = JobSpec.make("test_echo", {"x": 1})
        assert policy.backoff_s(spec, 1) == 0.0
        d2 = policy.backoff_s(spec, 2)
        d3 = policy.backoff_s(spec, 3)
        assert 0.5 <= d2 < 1.0  # base * jitter in [0.5, 1.0)
        assert 1.0 <= d3 < 2.0  # doubled
        assert policy.backoff_s(spec, 2) == d2  # pure: same inputs, same delay
        assert policy.backoff_s(spec, 10) == 3.0  # capped
        other = JobSpec.make("test_echo", {"x": 2})
        assert policy.backoff_s(other, 2) != d2  # jitter keyed on the spec

    def test_backoff_fraction_is_pure_and_in_range(self):
        f = derive_backoff_fraction("abc", 2)
        assert f == derive_backoff_fraction("abc", 2)
        assert 0.0 <= f < 1.0
        assert f != derive_backoff_fraction("abc", 3)

    def test_injection_pattern_parsing_and_matching(self):
        assert parse_injection("test_echo:2") == ("test_echo", 2)
        assert parse_injection('"m":1,:3') == ('"m":1,', 3)  # colons in substr
        with pytest.raises(ValueError):
            parse_injection("nocolon")
        with pytest.raises(ValueError):
            parse_injection("kind:notanint")
        spec = JobSpec.make("test_echo", {"x": 1})
        assert should_inject(spec, 1, "test_echo:2")
        assert should_inject(spec, 2, "test_echo:2")
        assert not should_inject(spec, 3, "test_echo:2")
        assert should_inject(spec, 1, "*:1")
        assert not should_inject(spec, 1, "other_kind:9")
        assert not should_inject(spec, 1, None)

    def test_env_var_gates_injection_in_execute_job(self, monkeypatch):
        spec = JobSpec.make("test_echo", {"x": 7})
        monkeypatch.setenv("SSTSP_FAIL_INJECT", "test_echo:2")
        with pytest.raises(InjectedFailure):
            execute_job(spec, attempt=1)
        with pytest.raises(InjectedFailure):
            execute_job(spec, attempt=2)
        assert execute_job(spec, attempt=3)["params"] == {"x": 7}
        monkeypatch.delenv("SSTSP_FAIL_INJECT")
        assert execute_job(spec, attempt=1)["params"] == {"x": 7}


# --- retries, quarantine, timeouts ---------------------------------------


_FAST_RETRY = dict(backoff_base_s=0.001, backoff_cap_s=0.01)


def test_injected_transient_failures_retry_to_success(tmp_path):
    log_path = str(tmp_path / "run.jsonl")
    specs = _echo_specs(3)
    policy = FailurePolicy(
        on_error="retry", max_retries=2, inject="test_echo:1", **_FAST_RETRY
    )
    result = run_sweep(
        "flaky", specs, SweepOptions(policy=policy, log_path=log_path)
    )
    # every job failed once, retried, and returned its normal bytes
    assert [v["params"]["x"] for v in result.values] == [0, 1, 2]
    assert result.stats.retries == 3 and result.stats.quarantined == 0
    records = [json.loads(line) for line in open(log_path, encoding="utf-8")]
    retries = [r for r in records if r["event"] == "job_retry"]
    assert len(retries) == 3
    assert all(r["reason"] == "injected" and r["attempt"] == 1 for r in retries)
    end = records[-1]
    assert end["event"] == "sweep_end"
    assert end["retries"] == 3
    assert end["metrics"]["counters"]["sweep.job_retry"] == 3


def test_retry_exhaustion_raises_with_the_job_named():
    policy = FailurePolicy(on_error="retry", max_retries=1, **_FAST_RETRY)
    with pytest.raises(RuntimeError, match="sweep job failed: test_boom"):
        run_sweep("boom", [JobSpec.make("test_boom", {})], SweepOptions(policy=policy))


def test_raise_mode_never_retries(tmp_path):
    log_path = str(tmp_path / "run.jsonl")
    policy = FailurePolicy(on_error="raise", max_retries=5, inject="test_echo:1")
    with pytest.raises(RuntimeError, match="sweep job failed"):
        run_sweep(
            "strict", _echo_specs(1),
            SweepOptions(policy=policy, log_path=log_path),
        )
    records = [json.loads(line) for line in open(log_path, encoding="utf-8")]
    assert not [r for r in records if r["event"] == "job_retry"]


def test_quarantine_records_failure_and_keeps_going(tmp_path):
    log_path = str(tmp_path / "run.jsonl")
    specs = [
        JobSpec.make("test_echo", {"x": 1}),
        JobSpec.make("test_boom", {}),
        JobSpec.make("test_echo", {"x": 2}),
    ]
    policy = FailurePolicy(on_error="quarantine", max_retries=1, **_FAST_RETRY)
    result = run_sweep(
        "quar", specs, SweepOptions(policy=policy, log_path=log_path)
    )
    assert result.values[0]["params"] == {"x": 1}
    assert result.values[1] is None
    assert result.values[2]["params"] == {"x": 2}
    assert result.stats.executed == 2 and result.stats.quarantined == 1
    (failure,) = result.failures
    assert failure.seq == 1 and failure.kind == "test_boom"
    assert failure.reason == "error" and failure.attempts == 2
    assert "kaboom" in failure.message
    records = [json.loads(line) for line in open(log_path, encoding="utf-8")]
    quarantined = [r for r in records if r["event"] == "job_quarantined"]
    assert len(quarantined) == 1 and quarantined[0]["seq"] == 1
    end = records[-1]
    assert end["quarantined"] == 1
    assert end["metrics"]["counters"]["sweep.job_quarantined"] == 1


@pytest.mark.skipif(
    not hasattr(signal, "SIGALRM"), reason="per-attempt timeouts need SIGALRM"
)
def test_timeout_then_quarantine(tmp_path):
    log_path = str(tmp_path / "run.jsonl")
    specs = [JobSpec.make("test_sleep", {"sleep_s": 30.0})]
    policy = FailurePolicy(
        on_error="quarantine", max_retries=1, timeout_s=0.2, **_FAST_RETRY
    )
    t0 = time.perf_counter()
    result = run_sweep(
        "hang", specs, SweepOptions(policy=policy, log_path=log_path)
    )
    assert time.perf_counter() - t0 < 10.0  # both attempts were cut short
    (failure,) = result.failures
    assert failure.reason == "timeout" and failure.attempts == 2
    assert result.stats.timeouts == 2 and result.stats.quarantined == 1
    records = [json.loads(line) for line in open(log_path, encoding="utf-8")]
    assert records[-1]["metrics"]["counters"]["sweep.job_timeout"] == 2


# --- worker-crash recovery ------------------------------------------------


def test_worker_crash_quarantined_and_sweep_survives(tmp_path):
    """A job that kills its worker process (os._exit) is quarantined
    after its attempts are exhausted; every other job still returns."""
    log_path = str(tmp_path / "run.jsonl")
    specs = _echo_specs(4) + [JobSpec.make("test_exit", {})]
    policy = FailurePolicy(on_error="quarantine", max_retries=2, **_FAST_RETRY)
    result = run_sweep(
        "crash", specs,
        SweepOptions(workers=2, policy=policy, log_path=log_path),
    )
    assert [v["params"]["x"] for v in result.values[:4]] == [0, 1, 2, 3]
    assert result.values[4] is None
    killer = [f for f in result.failures if f.kind == "test_exit"]
    assert len(killer) == 1 and killer[0].reason == "worker_crash"
    assert killer[0].attempts == 3  # 1 + max_retries crashes before giving up
    assert result.stats.worker_crashes >= 3
    records = [json.loads(line) for line in open(log_path, encoding="utf-8")]
    assert [r for r in records if r["event"] == "worker_crash"]
    assert [
        r for r in records
        if r["event"] == "job_quarantined" and r["kind"] == "test_exit"
    ]
    assert records[-1]["metrics"]["counters"]["sweep.job_quarantined"] >= 1


def test_worker_crash_raise_mode_aborts_with_job_named():
    specs = [JobSpec.make("test_exit", {}), JobSpec.make("test_echo", {"x": 1})]
    with pytest.raises(RuntimeError, match="sweep job failed"):
        run_sweep("crash-strict", specs, SweepOptions(workers=2))


# --- real per-job wall times at workers > 1 ------------------------------


def test_parallel_wall_times_are_per_job_not_batch_averaged():
    specs = [
        JobSpec.make("test_sleep", {"sleep_s": 0.1, "tag": "short"}),
        JobSpec.make("test_sleep", {"sleep_s": 0.6, "tag": "long"}),
    ]
    result = run_sweep("walls", specs, SweepOptions(workers=2))
    walls = sorted(result.stats.job_wall_s)
    assert len(walls) == 2
    # batch-averaging would report ~0.35s for both; per-job measurement
    # keeps the short job short and the long job long
    assert walls[0] < 0.35
    assert walls[1] > 0.45


# --- determinism under retry histories ------------------------------------


def test_table1_csv_identical_with_injected_retries_across_workers(
    monkeypatch, tmp_path
):
    """The acceptance contract: with deterministic failure injection and
    retries active, workers 1 and 4 still produce byte-identical CSVs —
    and the same bytes as a clean, injection-free run."""
    _, clean_csv = _rows_and_csv(
        monkeypatch, tmp_path, "clean", SweepOptions(workers=1)
    )
    policy = FailurePolicy(
        on_error="retry", max_retries=1, inject="table1_cell:1", **_FAST_RETRY
    )
    _, serial_csv = _rows_and_csv(
        monkeypatch, tmp_path, "flaky-serial",
        SweepOptions(workers=1, policy=policy),
    )
    _, parallel_csv = _rows_and_csv(
        monkeypatch, tmp_path, "flaky-parallel",
        SweepOptions(workers=4, policy=policy),
    )
    assert serial_csv == clean_csv, "a retried job must return first-try bytes"
    assert parallel_csv == clean_csv, "CSV bytes must survive retries + workers"


def test_traces_identical_with_injected_retries(tmp_path):
    """A retried job's surviving event trace is byte-identical to a
    first-try success's: the failed attempt's partial trace is replaced
    wholesale when the retry runs."""
    specs = _quick_specs()
    clean_dir = tmp_path / "clean"
    flaky_dir = tmp_path / "flaky"
    run_sweep("traced", specs, SweepOptions(trace_dir=str(clean_dir)))
    policy = FailurePolicy(
        on_error="retry", max_retries=1, inject="scenario_trace:1", **_FAST_RETRY
    )
    result = run_sweep(
        "traced", specs, SweepOptions(trace_dir=str(flaky_dir), policy=policy)
    )
    assert result.stats.retries == len(specs)
    assert _trace_files(clean_dir) == _trace_files(flaky_dir)
    for name in _trace_files(clean_dir):
        with open(clean_dir / name, "rb") as a, open(flaky_dir / name, "rb") as b:
            assert a.read() == b.read(), f"trace {name} differs after a retry"


# --- manifest + resume ----------------------------------------------------


def test_manifest_roundtrip_and_counts(tmp_path):
    specs = _echo_specs(3)
    manifest = SweepManifest.fresh("demo", specs, salt="s1")
    assert manifest.counts() == {"pending": 3, "completed": 0, "quarantined": 0}
    manifest.mark(specs[0], "completed", attempts=1)
    manifest.mark(specs[1], "quarantined", attempts=3, reason="timeout")
    path = str(tmp_path / "demo.manifest.json")
    manifest.save(path)
    loaded = SweepManifest.load(path)
    assert loaded.sweep == "demo" and loaded.salt == "s1"
    assert loaded.counts() == {"pending": 1, "completed": 1, "quarantined": 1}
    assert loaded.status(specs[0]) == "completed"
    assert loaded.jobs[specs[1].spec_hash()]["reason"] == "timeout"
    with pytest.raises(ValueError, match="unknown manifest status"):
        manifest.mark(specs[2], "vanished")


def test_resume_requires_a_cache():
    with pytest.raises(ValueError, match="resume requires"):
        SweepOptions(resume=True)


def test_resume_executes_only_what_manifest_and_cache_do_not_cover(tmp_path):
    cache_dir = str(tmp_path / "cache")
    manifest_path = str(tmp_path / "res.manifest.json")
    log_path = str(tmp_path / "res.jsonl")
    specs = _echo_specs(4)
    # a partial run covered only half the sweep before "dying"
    run_sweep(
        "res", specs[:2],
        SweepOptions(cache_dir=cache_dir, manifest_path=manifest_path,
                     log_path=log_path),
    )
    assert SweepManifest.load(manifest_path).counts()["completed"] == 2
    resumed = run_sweep(
        "res", specs,
        SweepOptions(cache_dir=cache_dir, manifest_path=manifest_path,
                     log_path=log_path, resume=True),
    )
    assert resumed.stats.cache_hits == 2 and resumed.stats.executed == 2
    assert [v["params"]["x"] for v in resumed.values] == [0, 1, 2, 3]
    final = SweepManifest.load(manifest_path)
    assert final.counts() == {"pending": 0, "completed": 4, "quarantined": 0}
    # resume appended to the run log instead of rotating it away
    records = [json.loads(line) for line in open(log_path, encoding="utf-8")]
    starts = [r for r in records if r["event"] == "sweep_start"]
    assert len(starts) == 2
    assert starts[1]["resume"] is True
    assert starts[1]["resumed_from"]["completed"] == 2


@pytest.mark.skipif(sys.platform == "win32", reason="POSIX signals required")
def test_interrupted_sweep_flushes_manifest_then_resumes(tmp_path):
    """SIGINT mid-sweep drains cleanly and flushes the manifest; a
    ``--resume`` rerun executes only the jobs that never completed."""
    cache_dir = str(tmp_path / "cache")
    manifest_path = str(tmp_path / "intr.manifest.json")
    log_path = str(tmp_path / "intr.jsonl")
    total = 6
    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    script = tmp_path / "interrupted_sweep.py"
    script.write_text(
        "import sys\n"
        f"sys.path[:0] = [{os.path.join(root, 'src')!r}, {root!r}]\n"
        "import tests.test_sweep  # registers the job kinds\n"
        "from repro.sweep import JobSpec, SweepOptions, run_sweep\n"
        "specs = [JobSpec.make('test_sleep', {'sleep_s': 0.4, 'x': i})\n"
        f"         for i in range({total})]\n"
        "run_sweep('intr', specs, SweepOptions(\n"
        f"    workers=2, cache_dir={cache_dir!r},\n"
        f"    manifest_path={manifest_path!r}, log_path={log_path!r}))\n",
        encoding="utf-8",
    )
    proc = subprocess.Popen(
        [sys.executable, str(script)], cwd=root,
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )
    try:
        deadline = time.time() + 30
        while time.time() < deadline:
            if os.path.exists(log_path) and any(
                json.loads(line)["event"] == "job"
                for line in open(log_path, encoding="utf-8")
            ):
                break
            time.sleep(0.02)
        else:
            pytest.fail("sweep never started inside the subprocess")
        proc.send_signal(signal.SIGINT)
        rc = proc.wait(timeout=30)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=10)
    assert rc != 0, "an interrupted sweep must not exit cleanly"
    manifest = SweepManifest.load(manifest_path)
    counts = manifest.counts()
    assert counts["completed"] >= 1, counts
    assert counts["pending"] >= 1, counts
    records = [json.loads(line) for line in open(log_path, encoding="utf-8")]
    assert any(r["event"] == "sweep_interrupted" for r in records)
    assert records[-1]["event"] == "sweep_end"  # the log was closed cleanly

    # --resume: only the jobs the manifest + cache do not cover execute
    specs = [
        JobSpec.make("test_sleep", {"sleep_s": 0.4, "x": i})
        for i in range(total)
    ]
    resumed = run_sweep(
        "intr", specs,
        SweepOptions(cache_dir=cache_dir, manifest_path=manifest_path,
                     log_path=log_path, resume=True),
    )
    assert resumed.stats.cache_hits == counts["completed"]
    assert resumed.stats.executed == total - counts["completed"]
    assert all(v == {"slept": 0.4} for v in resumed.values)
    assert SweepManifest.load(manifest_path).counts()["completed"] == total


# --- run-log rotation -----------------------------------------------------


def test_run_log_rotates_instead_of_clobbering(tmp_path):
    log_path = str(tmp_path / "run.jsonl")
    run_sweep("rot", _echo_specs(1), SweepOptions(log_path=log_path))
    run_sweep("rot", _echo_specs(2), SweepOptions(log_path=log_path))
    run_sweep("rot", _echo_specs(3), SweepOptions(log_path=log_path))
    current = [json.loads(line) for line in open(log_path, encoding="utf-8")]
    first = [json.loads(line) for line in open(log_path + ".1", encoding="utf-8")]
    second = [json.loads(line) for line in open(log_path + ".2", encoding="utf-8")]
    assert first[0]["jobs"] == 1  # oldest run preserved, not overwritten
    assert second[0]["jobs"] == 2
    assert current[0]["jobs"] == 3


# --- CLI flags ------------------------------------------------------------


def _parse_sweep_cli(argv):
    import argparse

    parser = argparse.ArgumentParser()
    add_sweep_arguments(parser)
    return parser.parse_args(argv)


def test_sweep_cli_flags_build_the_failure_policy(tmp_path):
    args = _parse_sweep_cli([
        "--on-error", "quarantine", "--retries", "1", "--job-timeout", "2.5",
        "--cache-dir", str(tmp_path / "c"), "--workers", "3",
    ])
    options = sweep_options_from_args(args)
    assert options.workers == 3
    assert options.policy.on_error == "quarantine"
    assert options.policy.max_retries == 1
    assert options.policy.timeout_s == 2.5
    assert options.resume is False


def test_sweep_cli_resume_conflicts_with_no_cache():
    args = _parse_sweep_cli(["--resume", "--no-cache"])
    with pytest.raises(ValueError, match="--resume requires"):
        sweep_options_from_args(args)


def test_sweep_cli_resume_flag_flows_through(tmp_path):
    args = _parse_sweep_cli(["--resume", "--cache-dir", str(tmp_path / "c")])
    options = sweep_options_from_args(args)
    assert options.resume is True and options.cache_dir == str(tmp_path / "c")
