"""SATSF (Zhou & Lai, ICPP 2005; the paper's reference [10]).

A TSF-compatible, self-adjusting scheme: station ``i`` competes for beacon
transmission every ``FFT(i)`` BPs, and ``FFT(i)`` is adjusted at the end of
each BP so that fast stations end up competing more frequently than slow
ones (paper section 2's summary). The reconstruction here adjusts
multiplicatively:

* when the station adopts a received timestamp (it is slower than the
  sender) its ``FFT`` doubles, up to ``fft_max`` - it yields the channel;
* when the station goes a full ``FFT`` cycle without being beaten its
  ``FFT`` halves, down to 1 - it gradually claims every BP.

The fixed point is the ATSP/TATSP-like state (fastest station at
``FFT = 1``, rest near ``fft_max``) reached without any explicit
fastest-station detection, which is what made SATSF scalable and
TSF-compatible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.clocks.oscillator import TsfTimer
from repro.mac.beacon import BeaconFrame
from repro.protocols.base import RxContext, TxIntent
from repro.protocols.tsf import TsfConfig, TsfProtocol


@dataclass(frozen=True)
class SatsfConfig(TsfConfig):
    """SATSF parameters on top of the TSF ones."""

    #: Upper bound on the contention interval FFT(i).
    fft_max: int = 64

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.fft_max < 1:
            raise ValueError("fft_max must be >= 1")


class SatsfProtocol(TsfProtocol):
    """One station's SATSF driver."""

    protocol_name = "satsf"

    def __init__(
        self,
        node_id: int,
        timer: TsfTimer,
        config: SatsfConfig,
        rng: np.random.Generator,
    ) -> None:
        super().__init__(node_id, timer, config, rng)
        self.config: SatsfConfig = config
        self.fft = 1
        self._beaten_this_period = False
        self._unbeaten_run = 0
        self._countdown = int(rng.integers(0, 2))

    def begin_period(self, period: int) -> Optional[TxIntent]:
        if self._countdown > 0:
            self._countdown -= 1
            return None
        self._countdown = self.fft - 1
        return super().begin_period(period)

    def on_beacon(self, frame: BeaconFrame, rx: RxContext) -> None:
        before = self.adoptions
        super().on_beacon(frame, rx)
        if self.adoptions > before:
            self._beaten_this_period = True

    def end_period(
        self, period: int, heard_beacon: bool, transmitted: bool, tx_success: bool
    ) -> None:
        if self._beaten_this_period:
            self.fft = min(self.fft * 2, self.config.fft_max)
            self._unbeaten_run = 0
            self._countdown = max(self._countdown, 1)
        else:
            self._unbeaten_run += 1
            if self._unbeaten_run >= self.fft and self.fft > 1:
                self.fft //= 2
                self._unbeaten_run = 0
                self._countdown = min(self._countdown, self.fft - 1)
        self._beaten_this_period = False
